(** Streaming MUST-style overlay checker: the online form of {!Overlay}.

    Ranks push collective events as they happen into bounded per-leaf
    mailboxes; a coordinator domain drains them in batches, compares
    interned signature ids (integers, not strings), and optionally
    shards the scan over {!Serve.Pool} worker domains.  Backpressure: a
    full mailbox blocks its producer, so in-flight memory is
    O(window × nranks) regardless of trace length.  Verdicts,
    divergence localization and cost metrics are byte-identical to
    {!Overlay.check} on the same traces with the same (fixed) fanout. *)

type stats = {
  events : int;  (** Events consumed before the verdict was reached. *)
  drained : int;  (** Events discarded after an early divergence verdict. *)
  batches : int;  (** Reduction batches executed. *)
  max_batch_fill : int;  (** Largest number of rounds reduced in one batch. *)
  max_in_flight : int;
      (** Largest buffered event count (mailboxes + batch carries)
          observed at a batch boundary; hard bound
          [(window + batch) * nranks]. *)
  retunes : int;  (** Load-aware tree reconfigurations performed. *)
  distinct_signatures : int;  (** Intern-table size at the end. *)
  final_fanout : int;  (** Fanout of the tree after the last retune. *)
  shards : int;
  window : int;
  batch : int;
}

type t

(** Load-aware default fanout for [nranks] leaves: ⌈√nranks⌉ clamped to
    [2, 16] — at most two overlay layers for typical rank counts without
    letting any single tool node serve an unbounded fan-in. *)
val auto_fanout : nranks:int -> int

(** [create ~nranks ()] spawns the coordinator domain and returns a live
    checker.

    @param fanout overlay tree fanout (default {!auto_fanout}; >= 2).
    @param window per-rank mailbox capacity — the divergence window and
      backpressure bound (default 1024; >= 2).
    @param batch maximum rounds reduced per coordinator wake-up
      (default 256; >= 1).
    @param shards internal-node shards run on a {!Serve.Pool} of domains
      (default 1 = scan inline; clamped to [nranks]).  The verdict is
      independent of the shard count.
    @param adapt enable load-aware tree reconfiguration (default
      [false]).  Retuning changes only cost metrics, never verdicts; use
      a fixed [fanout] when byte-identity with {!Overlay.check} on the
      cost metrics matters.
    @raise Invalid_argument on out-of-range parameters. *)
val create :
  ?fanout:int ->
  ?window:int ->
  ?batch:int ->
  ?shards:int ->
  ?adapt:bool ->
  nranks:int ->
  unit ->
  t

(** Push rank [rank]'s next collective event.  Interns the signature
    (per-rank cache; the shared table's lock is only taken on new
    signatures) and appends it to a producer-local buffer that is
    flushed into the rank's bounded mailbox every [window/4] events (and
    on {!close_rank} / {!close}), so the mailbox lock is amortized over
    the flush chunk.  A flush blocks while the mailbox is full
    (backpressure).  Each rank's [push]/[close_rank] calls must come
    from a single producer thread; one thread may produce for several
    ranks if it keeps them in lockstep (within a flush chunk of each
    other), as the simulator and {!check_traces} do.
    @raise Invalid_argument on a bad rank or if the rank was closed. *)
val push : t -> rank:int -> Overlay.event -> unit

(** {!push} for a signature id already interned in this checker's table
    (e.g. from {!intern}). *)
val push_id : t -> rank:int -> int -> unit

(** Bulk {!push} of a whole event array: same semantics, one rank
    validation and producer lookup for the entire batch. *)
val push_all : t -> rank:int -> Overlay.event array -> unit

(** [push_slice t ~rank events pos len]: bulk {!push} of
    [events.(pos .. pos+len-1)].  A single thread producing for several
    ranks should interleave slices no longer than the flush chunk
    ([window/4]) to stay in lockstep (see {!push}). *)
val push_slice : t -> rank:int -> Overlay.event array -> int -> int -> unit

(** Intern an event's signature in this checker's table. *)
val intern : t -> Overlay.event -> int

(** Mark rank [rank]'s stream as ended; its remaining rounds contribute
    ["<no event>"], exactly as a short trace does post-hoc. *)
val close_rank : t -> rank:int -> unit

(** Close every rank's stream, flushing any producer-buffered events
    first.  Call only after the producer threads have quiesced. *)
val close : t -> unit

(** Close all streams (idempotent), wait for the coordinator to finish,
    and return its report and streaming statistics.  Cached: subsequent
    calls return the same result. *)
val result : t -> Overlay.report * stats

(** Subscribe the checker to a simulated MPI engine: every recorded
    collective arrival is pushed online and per-rank trace retention is
    turned off — the checker's bounded window replaces the full trace.
    The caller still must {!close} (or {!result}) after the run.
    @raise Invalid_argument on a rank-count mismatch. *)
val attach_engine : t -> Mpisim.Engine.t -> unit

(** Stream complete per-rank traces through a fresh checker (single
    producer, round-robin by position, each rank closed at its last
    event) and return its report and stats — the streaming counterpart
    of {!Overlay.check} on the same traces and fanout. *)
val check_traces :
  ?fanout:int ->
  ?window:int ->
  ?batch:int ->
  ?shards:int ->
  ?adapt:bool ->
  Overlay.event list array ->
  Overlay.report * stats
