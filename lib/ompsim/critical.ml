(** Named critical-section locks.

    OpenMP [critical] sections with the same name exclude each other across
    all teams of a process; the anonymous critical uses a reserved name.
    A per-process lock table maps each name to its holder and FIFO wait
    queue. *)

let anonymous = "<anonymous>"

type lock = { mutable holder : int option; waiters : int Queue.t }

type t = (string, lock) Hashtbl.t

let create () : t = Hashtbl.create 8

let get_lock t name =
  match Hashtbl.find_opt t name with
  | Some l -> l
  | None ->
      let l = { holder = None; waiters = Queue.create () } in
      Hashtbl.replace t name l;
      l

type acquire_result = Acquired | Must_wait

(** [acquire t ~name ~cookie]: take the lock or enqueue the caller. *)
let acquire t ~name ~cookie =
  let l = get_lock t name in
  match l.holder with
  | None ->
      l.holder <- Some cookie;
      Acquired
  | Some _ ->
      Queue.add cookie l.waiters;
      Must_wait

(** [release t ~name ~cookie] frees the lock and returns the next waiter to
    resume (which then holds the lock), if any.
    @raise Invalid_argument if [cookie] does not hold the lock. *)
let release t ~name ~cookie =
  let l = get_lock t name in
  (match l.holder with
  | Some h when h = cookie -> ()
  | _ -> invalid_arg "Critical.release: caller does not hold the lock");
  if Queue.is_empty l.waiters then begin
    l.holder <- None;
    None
  end
  else begin
    let next = Queue.pop l.waiters in
    l.holder <- Some next;
    Some next
  end

(** Deterministic snapshot of the lock table — (name, holder, FIFO wait
    queue) sorted by name, empty locks elided.  The wait-queue order is
    semantic state (it decides who acquires next), so state fingerprints
    fold over this snapshot. *)
let state t =
  Hashtbl.fold
    (fun name l acc ->
      if l.holder = None && Queue.is_empty l.waiters then acc
      else (name, l.holder, List.of_seq (Queue.to_seq l.waiters)) :: acc)
    t []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(** Cookies blocked on any lock, for deadlock diagnostics. *)
let blocked t =
  Hashtbl.fold
    (fun _ l acc -> List.of_seq (Queue.to_seq l.waiters) @ acc)
    t []
