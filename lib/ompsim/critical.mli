(** Named critical-section locks with FIFO wait queues; same-named
    criticals exclude each other across all teams of a process. *)

(** Reserved name of the anonymous critical. *)
val anonymous : string

type t

val create : unit -> t

type acquire_result = Acquired | Must_wait

val acquire : t -> name:string -> cookie:int -> acquire_result

(** Frees the lock; returns the next waiter (who then holds it), if any.
    @raise Invalid_argument if [cookie] does not hold the lock. *)
val release : t -> name:string -> cookie:int -> int option

(** Cookies blocked on any lock, for deadlock diagnostics. *)
val blocked : t -> int list

(** Deterministic snapshot of the non-idle locks, sorted by name:
    (name, holder, waiters in FIFO order).  Used by state fingerprints. *)
val state : t -> (string * int option * int list) list
