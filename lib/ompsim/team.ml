(** OpenMP thread teams.

    A team is created at each [parallel] construct (the explicit fork/join
    model of the paper).  It tracks: the barrier object shared by its
    members, the arbitration table for [single] constructs (first thread to
    encounter a given dynamic instance executes it), and join bookkeeping
    for the forking task. *)

type t = {
  id : int;  (** Unique team id within the simulation. *)
  rank : int;  (** Owning MPI process. *)
  size : int;
  parent : t option;  (** Enclosing team, for nested parallelism. *)
  depth : int;  (** Nesting depth: 1 for an outermost parallel region. *)
  barrier : Barrier.t;
  singles : (int * int, unit) Hashtbl.t;
      (** Keys [(construct_uid, instance)] already claimed by some thread. *)
  mutable finished : int;  (** Members that ran to completion. *)
  forker : int;  (** Cookie of the task blocked on the join. *)
}

let next_id = ref 0

let create ~rank ~size ~parent ~forker =
  incr next_id;
  {
    id = !next_id;
    rank;
    size;
    parent;
    depth = (match parent with None -> 1 | Some p -> p.depth + 1);
    barrier = Barrier.create ~size;
    singles = Hashtbl.create 8;
    finished = 0;
    forker;
  }

(** [claim_single team ~construct ~instance] returns [true] iff the calling
    thread is the first of the team to encounter this dynamic instance of
    the [single] construct, and therefore executes its body. *)
let claim_single team ~construct ~instance =
  let key = (construct, instance) in
  if Hashtbl.mem team.singles key then false
  else begin
    Hashtbl.replace team.singles key ();
    true
  end

(** Records one member's completion; [true] when the whole team is done and
    the forker can be resumed. *)
let member_finished team =
  team.finished <- team.finished + 1;
  team.finished = team.size

(** Team size as seen by a task: 1 outside any parallel region. *)
let size_of = function None -> 1 | Some team -> team.size
