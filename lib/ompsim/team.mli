(** OpenMP thread teams: created at each [parallel] construct, carrying
    the team barrier, the [single] arbitration table and join
    bookkeeping. *)

type t = {
  id : int;
  rank : int;  (** Owning MPI process. *)
  size : int;
  parent : t option;
  depth : int;  (** 1 for an outermost parallel region. *)
  barrier : Barrier.t;
  singles : (int * int, unit) Hashtbl.t;
  mutable finished : int;
  forker : int;  (** Cookie of the task blocked on the join. *)
}

val create : rank:int -> size:int -> parent:t option -> forker:int -> t

(** [true] iff the caller is the first of the team to encounter this
    dynamic instance of the [single] construct. *)
val claim_single : t -> construct:int -> instance:int -> bool

(** Records one member's completion; [true] when the team is done and the
    forker can resume. *)
val member_finished : t -> bool

(** Team size as seen by a task: 1 outside any parallel region. *)
val size_of : t option -> int
