(** Bounded, thread-safe FIFO summary cache (see the interface). *)

type entry = Minilang.Ast.func * Parcoach.Driver.func_report

type t = {
  lock : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  order : string Queue.t;  (** Insertion order; may hold stale keys. *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 256;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.hits <- t.hits + 1;
          Some e
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t key func report =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        Hashtbl.replace t.tbl key (func, report);
        Queue.push key t.order;
        while Hashtbl.length t.tbl > t.capacity do
          (* The queue can hold keys already evicted and re-added; only
             count an eviction when the key is still live. *)
          match Queue.take_opt t.order with
          | None -> Hashtbl.reset t.tbl (* unreachable: tbl non-empty *)
          | Some old ->
              if Hashtbl.mem t.tbl old then begin
                Hashtbl.remove t.tbl old;
                t.evictions <- t.evictions + 1
              end
        done
      end)

let replace t key func report =
  with_lock t (fun () ->
      (* Only refresh live entries: inserting here would bypass the
         eviction queue.  Racing with an eviction just loses the
         refresh, which is harmless. *)
      if Hashtbl.mem t.tbl key then Hashtbl.replace t.tbl key (func, report))

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        entries = Hashtbl.length t.tbl;
        evictions = t.evictions;
      })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.tbl;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
