(** Bounded per-function summary cache.

    Maps a {!Hash} key to the function it was computed from (kept for the
    collision guard and location relocation) and its
    {!Parcoach.Driver.func_report}.  Thread-safe: daemon pool workers
    share one cache.  Eviction is FIFO over insertion order once
    [capacity] entries are exceeded. *)

type t

type stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
}

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 summaries. *)

(** Lookup; counts a hit or a miss. *)
val find : t -> string -> (Minilang.Ast.func * Parcoach.Driver.func_report) option

val add : t -> string -> Minilang.Ast.func -> Parcoach.Driver.func_report -> unit

(** Refresh a live entry in place (no-op when the key is absent); used to
    re-anchor a cached summary on the latest source layout so repeated
    hits at a stable layout skip relocation. *)
val replace :
  t -> string -> Minilang.Ast.func -> Parcoach.Driver.func_report -> unit

val stats : t -> stats

(** Drop every entry (stats are reset too). *)
val clear : t -> unit
