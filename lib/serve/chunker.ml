open Minilang

type chunk = { text : string; line : int; col : int }
type split = { clean : bool; chunks : chunk list }

(* Single character scan.  The grammar has no string literals, so the
   only lexical islands are the two comment forms; outside them every
   '{'/'}' is a real brace.  A top-level function necessarily starts
   with the keyword [func] at brace depth 0. *)
let split source =
  let n = String.length source in
  let boundaries = ref [] in
  (* (offset, line, col), reversed *)
  let clean = ref true in
  let depth = ref 0 in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let advance () =
    (if source.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  while !i < n do
    let c = source.[!i] in
    if c = '/' && !i + 1 < n && source.[!i + 1] = '/' then begin
      (* line comment: skip to end of line *)
      while !i < n && source.[!i] <> '\n' do
        advance ()
      done
    end
    else if c = '/' && !i + 1 < n && source.[!i + 1] = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if source.[!i] = '*' && !i + 1 < n && source.[!i + 1] = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then clean := false
    end
    else if c = '{' then begin
      incr depth;
      advance ()
    end
    else if c = '}' then begin
      decr depth;
      if !depth < 0 then clean := false;
      advance ()
    end
    else if
      !depth = 0 && c = 'f'
      && !i + 4 <= n
      && String.sub source !i 4 = "func"
      && ((not (!i + 4 < n)) || not (is_ident source.[!i + 4]))
      && (!i = 0 || not (is_ident source.[!i - 1]))
    then begin
      boundaries := (!i, !line, !col) :: !boundaries;
      advance ();
      advance ();
      advance ();
      advance ()
    end
    else begin
      (* Anything but whitespace at depth 0 outside a function chunk is
         not ours to slice (stray tokens before the first [func], or
         after a closing brace): fall back to the whole-file parser so
         its error reporting stands. *)
      (if !depth = 0 && !boundaries = [] && not (c = ' ' || c = '\t' || c = '\n' || c = '\r')
       then clean := false);
      advance ()
    end
  done;
  if !depth <> 0 then clean := false;
  let bs = List.rev !boundaries in
  let rec cut = function
    | [] -> []
    | (off, line, col) :: rest ->
        let stop = match rest with (o, _, _) :: _ -> o | [] -> n in
        { text = String.sub source off (stop - off); line; col } :: cut rest
  in
  { clean = !clean && bs <> []; chunks = cut bs }

let shift_func ~file ~line ~col f =
  let line0 = line and col0 = col in
  let reloc (l : Loc.t) =
    if Loc.is_none l then l
    else if l.line = 1 then { Loc.file; line = line0; col = l.col + col0 - 1 }
    else { Loc.file; line = l.line + line0 - 1; col = l.col }
  in
  let f =
    Ast.map_blocks
      (List.map (fun (s : Ast.stmt) -> { s with sloc = reloc s.sloc }))
      f
  in
  { f with floc = reloc f.floc }
