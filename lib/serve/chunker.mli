(** Source chunking for the incremental parse cache.

    The mini-language's top level is a plain sequence of [func]
    declarations, so a source text can be cut into per-function chunks
    with a single character scan (tracking brace depth and comments) —
    no parsing.  The daemon digests each chunk's text and re-parses only
    chunks it has not seen: an edit to one function costs one function's
    parse, not the file's.

    Chunks are parsed in isolation ([Parser.parse_string] on the chunk
    text) and carry chunk-relative locations; {!shift_func} rebases a
    parsed function onto its absolute position in the requested file.
    The scan is conservative: any input it cannot prove to be a clean
    sequence of top-level functions (stray tokens before the first
    [func], unbalanced braces, an unterminated comment) reports
    [clean = false] and the caller falls back to a whole-file parse, so
    errors and results are exactly the one-shot pipeline's. *)

type chunk = {
  text : string;  (** From the [func] keyword to the next one (or EOF). *)
  line : int;  (** 1-based line of the chunk's first character. *)
  col : int;  (** 1-based column of the chunk's first character. *)
}

type split = {
  clean : bool;
      (** Whether the scan proved the source a plain top-level function
          sequence; when [false], [chunks] must not be used. *)
  chunks : chunk list;
}

val split : string -> split

(** [shift_func ~file ~line ~col f] rebases the chunk-relative locations
    of [f] (parsed at line 1, column 1) onto the absolute position
    [(line, col)] of [file]; columns shift only on the chunk's first
    line. *)
val shift_func :
  file:string -> line:int -> col:int -> Minilang.Ast.func -> Minilang.Ast.func
