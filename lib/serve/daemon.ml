(** Daemon state and protocol handling (see the interface). *)

open Minilang

(* One cached function chunk: the chunk-relative parse, its structural
   digest (feeds the summary-key memo), and a memo of the last absolute
   form so a chunk that keeps its file position across requests is
   reused physically, with no location shifting at all. *)
type chunk_entry = {
  text : string;  (** Collision guard for the text digest. *)
  rel : Ast.func;
  fdigest : string;
  mutable abs : (string * int * int * Ast.func) option;
}

type t = {
  cache : Cache.t;
  asts : (string, Ast.program * (string * string) list option) Hashtbl.t;
      (** Whole-source AST cache, keyed by digest of (file, source), with
          the per-function digest memo when the chunked path built it.
          Re-sent identical sources skip the parser entirely. *)
  chunks : (string, chunk_entry) Hashtbl.t;
      (** Per-function parse cache, keyed by digest of the chunk text.
          An edited source re-parses only its changed chunks. *)
  ast_lock : Mutex.t;
  default_jobs : int option;
}

let ast_cache_capacity = 64
let chunk_cache_capacity = 2048

let create ?capacity ?jobs () =
  {
    cache = Cache.create ?capacity ();
    asts = Hashtbl.create 32;
    chunks = Hashtbl.create 256;
    ast_lock = Mutex.create ();
    default_jobs = jobs;
  }

let cache t = t.cache

type analysis = {
  report : Parcoach.Driver.report;
  issues : Validate.issue list;
  reused : int;
  analysed : int;
  timings : Parcoach.Timings.t;
}

(* ------------------------------------------------------------------ *)
(* Analysis with summary reuse                                         *)
(* ------------------------------------------------------------------ *)

exception Chunk_fallback

(* Parse via the per-function chunk cache: split the source, re-parse
   only chunks whose text is new, shift reused chunks onto their current
   file position.  Returns the program plus the per-function digest memo
   for {!Hash.keys}.  Raises [Chunk_fallback] whenever the chunked result
   could differ from a whole-file parse (unclean split, a chunk that does
   not parse to exactly one function) — the caller then runs the one-shot
   parser so results and errors are exactly its own. *)
let parse_chunked t ~file source =
  match Chunker.split source with
  | { Chunker.clean = false; _ } -> raise Chunk_fallback
  | { Chunker.chunks; _ } ->
      let memo = ref [] in
      let funcs =
        List.map
          (fun (c : Chunker.chunk) ->
            let key = Digest.string c.Chunker.text in
            Mutex.lock t.ast_lock;
            let hit =
              match Hashtbl.find_opt t.chunks key with
              | Some e when String.equal e.text c.Chunker.text -> Some e
              | _ -> None
            in
            Mutex.unlock t.ast_lock;
            let entry =
              match hit with
              | Some e -> e
              | None -> (
                  let p =
                    try Parser.parse_string ~file:"" c.Chunker.text
                    with Parser.Parse_error _ | Lexer.Lex_error _ ->
                      raise Chunk_fallback
                  in
                  match p.Ast.funcs with
                  | [ f ] ->
                      let e =
                        {
                          text = c.Chunker.text;
                          rel = f;
                          fdigest = Hash.func_digest f;
                          abs = None;
                        }
                      in
                      Mutex.lock t.ast_lock;
                      if Hashtbl.length t.chunks >= chunk_cache_capacity then
                        Hashtbl.reset t.chunks;
                      Hashtbl.replace t.chunks key e;
                      Mutex.unlock t.ast_lock;
                      e
                  | _ -> raise Chunk_fallback)
            in
            let f =
              Mutex.lock t.ast_lock;
              let f =
                match entry.abs with
                | Some (af, al, ac, g)
                  when String.equal af file && al = c.Chunker.line
                       && ac = c.Chunker.col ->
                    g
                | _ ->
                    let g =
                      Chunker.shift_func ~file ~line:c.Chunker.line
                        ~col:c.Chunker.col entry.rel
                    in
                    entry.abs <- Some (file, c.Chunker.line, c.Chunker.col, g);
                    g
              in
              Mutex.unlock t.ast_lock;
              f
            in
            memo := (f.Ast.fname, entry.fdigest) :: !memo;
            f)
          chunks
      in
      ({ Ast.funcs }, Some !memo)

let parse_cached t tm ~file source =
  let key = Digest.string (file ^ "\x00" ^ source) in
  Mutex.lock t.ast_lock;
  let hit = Hashtbl.find_opt t.asts key in
  Mutex.unlock t.ast_lock;
  match hit with
  | Some cached -> cached
  | None ->
      let ((_, _) as result) =
        Parcoach.Timings.record tm "parse" (fun () ->
            try parse_chunked t ~file source
            with Chunk_fallback -> (Parser.parse_string ~file source, None))
      in
      Mutex.lock t.ast_lock;
      if Hashtbl.length t.asts >= ast_cache_capacity then Hashtbl.reset t.asts;
      Hashtbl.replace t.asts key result;
      Mutex.unlock t.ast_lock;
      result

let issue_of_loc_error loc message =
  { Validate.severity = Validate.Error; loc; message }

let analyze_source t ?(options = Parcoach.Driver.default_options) ?jobs
    ?(file = "<request>") source =
  let tm = Parcoach.Timings.create () in
  match parse_cached t tm ~file source with
  | exception Parser.Parse_error (loc, msg) ->
      Error [ issue_of_loc_error loc ("parse error: " ^ msg) ]
  | exception Lexer.Lex_error (loc, msg) ->
      Error [ issue_of_loc_error loc ("lex error: " ^ msg) ]
  | program, memo -> (
      let issues =
        Parcoach.Timings.record tm "validate" (fun () ->
            Validate.check_program program)
      in
      match Validate.is_valid issues with
      | false -> Error issues
      | true ->
          let digest =
            Option.map
              (fun pairs ->
                let tbl = Hashtbl.create (List.length pairs) in
                List.iter (fun (n, d) -> Hashtbl.replace tbl n d) pairs;
                fun (f : Ast.func) -> Hashtbl.find_opt tbl f.Ast.fname)
              memo
          in
          let keys =
            Parcoach.Timings.record tm "hash" (fun () ->
                Hash.keys ?digest ~options program)
          in
          (* Summary-cache lookups: a hit must be structurally equal (the
             digest-collision guard) and is relocated onto the fresh
             function's source layout so the merged report is
             byte-identical to a cold run.  A relocated summary is written
             back so repeated requests at a stable layout skip the
             relocation pass entirely. *)
          let cached = Hashtbl.create (List.length keys) in
          List.iter
            (fun (f, key) ->
              match Cache.find t.cache key with
              | Some (cached_func, fr) when Ast.equal_func cached_func f ->
                  let fr' = Relocate.func_report ~cached:cached_func ~fresh:f fr in
                  if fr' != fr then Cache.replace t.cache key f fr';
                  Hashtbl.replace cached f.Ast.fname fr'
              | _ -> ())
            keys;
          let reuse f = Hashtbl.find_opt cached f.Ast.fname in
          let jobs =
            match jobs with Some _ as j -> j | None -> t.default_jobs
          in
          let report =
            Parcoach.Driver.analyze ~options ?jobs ~reuse ~timings:tm program
          in
          (* Populate the cache with this request's fresh results. *)
          List.iter2
            (fun (f, key) (fr : Parcoach.Driver.func_report) ->
              if not (Hashtbl.mem cached f.Ast.fname) then
                Cache.add t.cache key f fr)
            keys report.Parcoach.Driver.funcs;
          let reused = Hashtbl.length cached in
          Ok
            {
              report;
              issues;
              reused;
              analysed = List.length keys - reused;
              timings = tm;
            })

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let options_of_params params =
  let flag name =
    Option.value ~default:false (Option.bind (Json.member name params) Json.to_bool)
  in
  match Option.bind (Json.member "level" params) Json.to_str with
  | Some s when Mpisim.Thread_level.of_string s = None ->
      Error (Printf.sprintf "unknown thread level '%s'" s)
  | level ->
      Ok
        {
          Parcoach.Driver.initial_word =
            (if flag "initial_multithreaded" then [ Parcoach.Pword.P 0 ]
             else []);
          provided_level =
            (match Option.bind level Mpisim.Thread_level.of_string with
            | Some l -> l
            | None -> Mpisim.Thread_level.Multiple);
          taint_filter = flag "taint_filter";
          interprocedural = flag "interprocedural";
          races = flag "races";
          requests = flag "requests";
        }

let error_response id msg =
  Json.Obj [ ("id", id); ("ok", Json.Bool false); ("error", Json.Str msg) ]

(* The warning-class filter shared with [parcoachc --only]: a
   comma-separated string or a list of strings; unknown class names are
   protocol errors (the CLI rejects them at option-parse time). *)
let only_of_params params =
  let check names =
    match
      List.find_opt
        (fun c -> not (List.mem c Parcoach.Warning.all_classes))
        names
    with
    | Some c ->
        Error (Printf.sprintf "analyze: unknown warning class '%s'" c)
    | None -> Ok (Some names)
  in
  match Json.member "only" params with
  | None -> Ok None
  | Some (Json.Str s) -> check (String.split_on_char ',' s)
  | Some (Json.List items) -> (
      let strs = List.filter_map Json.to_str items in
      if List.length strs <> List.length items then
        Error "analyze: 'only' list must contain only strings"
      else check strs)
  | Some _ -> Error "analyze: 'only' must be a string or a list of strings"

let analyze_response t id params =
  match Option.bind (Json.member "source" params) Json.to_str with
  | None -> error_response id "analyze: missing string parameter 'source'"
  | Some source -> (
      match
        match options_of_params params with
        | Error msg -> Error msg
        | Ok options -> (
            match only_of_params params with
            | Error msg -> Error msg
            | Ok only -> Ok (options, only))
      with
      | Error msg -> error_response id msg
      | Ok (options, only) -> (
          let jobs = Option.bind (Json.member "jobs" params) Json.to_int in
          let file =
            Option.bind (Json.member "file" params) Json.to_str
          in
          match jobs with
          | Some j when j < 1 -> error_response id "analyze: jobs must be >= 1"
          | _ -> (
              match analyze_source t ~options ?jobs ?file source with
              | Error issues ->
                  Json.Obj
                    [
                      ("id", id);
                      ("ok", Json.Bool true);
                      ("valid", Json.Bool false);
                      ("issues", Json.Raw (Parcoach.Json_report.issues_json issues));
                    ]
              | Ok a ->
                  let report =
                    Parcoach.Driver.filter_classes a.report ~only
                  in
                  let report_json =
                    Parcoach.Timings.record a.timings "render" (fun () ->
                        Parcoach.Json_report.to_string ~issues:a.issues report)
                  in
                  let stats = Cache.stats t.cache in
                  Json.Obj
                    [
                      ("id", id);
                      ("ok", Json.Bool true);
                      ("valid", Json.Bool true);
                      ("report", Json.Raw report_json);
                      ( "warnings",
                        Json.Int (Parcoach.Driver.warning_count report) );
                      ( "cache",
                        Json.Obj
                          [
                            ("hits", Json.Int a.reused);
                            ("misses", Json.Int a.analysed);
                            ("entries", Json.Int stats.Cache.entries);
                          ] );
                      ( "timings",
                        Json.Raw (Parcoach.Timings.to_json a.timings) );
                    ])))

let stats_response t id =
  let s = Cache.stats t.cache in
  Mutex.lock t.ast_lock;
  let asts = Hashtbl.length t.asts in
  let chunks = Hashtbl.length t.chunks in
  Mutex.unlock t.ast_lock;
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool true);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int s.Cache.hits);
            ("misses", Json.Int s.Cache.misses);
            ("entries", Json.Int s.Cache.entries);
            ("evictions", Json.Int s.Cache.evictions);
          ] );
      ("asts", Json.Int asts);
      ("chunks", Json.Int chunks);
    ]

let handle_request t request =
  let id = Option.value ~default:Json.Null (Json.member "id" request) in
  let params =
    Option.value ~default:request (Json.member "params" request)
  in
  match Option.bind (Json.member "method" request) Json.to_str with
  | Some "analyze" -> analyze_response t id params
  | Some "ping" -> Json.Obj [ ("id", id); ("ok", Json.Bool true) ]
  | Some "stats" -> stats_response t id
  | Some "clear" ->
      Cache.clear t.cache;
      Mutex.lock t.ast_lock;
      Hashtbl.reset t.asts;
      Hashtbl.reset t.chunks;
      Mutex.unlock t.ast_lock;
      Json.Obj [ ("id", id); ("ok", Json.Bool true); ("cleared", Json.Bool true) ]
  | Some "shutdown" ->
      Json.Obj
        [ ("id", id); ("ok", Json.Bool true); ("shutdown", Json.Bool true) ]
  | Some m -> error_response id (Printf.sprintf "unknown method '%s'" m)
  | None -> error_response id "missing string field 'method'"

let handle_line t line =
  match Json.parse line with
  | Error msg -> Json.to_string (error_response Json.Null ("bad request: " ^ msg))
  | Ok request -> (
      match handle_request t request with
      | response -> Json.to_string response
      | exception exn ->
          let id = Option.value ~default:Json.Null (Json.member "id" request) in
          Json.to_string
            (error_response id ("internal error: " ^ Printexc.to_string exn)))

let is_shutdown line =
  match Json.parse line with
  | Ok request ->
      Option.bind (Json.member "method" request) Json.to_str
      = Some "shutdown"
  | Error _ -> false

let serve ?(pool = 1) t ic oc =
  let out_lock = Mutex.create () in
  let emit line =
    Mutex.lock out_lock;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_lock
  in
  let workers = if pool > 1 then Some (Pool.create ~jobs:pool ()) else None in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> None
    | line when String.length (String.trim line) = 0 -> loop ()
    | line ->
        if is_shutdown line then Some line
        else begin
          (match workers with
          | None -> emit (handle_line t line)
          | Some p -> ignore (Pool.submit p (fun () -> emit (handle_line t line))));
          loop ()
        end
  in
  let shutdown_line = loop () in
  (* Drain in-flight requests before answering the shutdown (or before
     returning on EOF), so every accepted request gets its response. *)
  Option.iter Pool.shutdown workers;
  Option.iter (fun line -> emit (handle_line t line)) shutdown_line
