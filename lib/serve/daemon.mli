(** The [parcoachd] analysis daemon: long-lived state (parsed-AST cache,
    per-function summary cache) plus the line-delimited JSON protocol.

    {2 Protocol}

    One JSON object per line on stdin (or a Unix-socket connection), one
    JSON object per line back.  Requests carry an [id] that is echoed
    verbatim in the response (responses may arrive out of order when the
    daemon runs a worker pool).

    {v
    {"id":1,"method":"analyze","params":{
       "source":"func main() { MPI_Barrier(); }",
       "file":"demo.hml",          // optional, for warning locations
       "races":true, "interprocedural":true, "taint_filter":true,
       "initial_multithreaded":false, "level":"multiple",
       "jobs":2                    // optional per-request domain count
    }}
    v}

    Successful analyses answer
    [{"id":1,"ok":true,"valid":true,"report":{...},"warnings":N,
      "cache":{"hits":h,"misses":m,"entries":e},"timings":{...}}]
    where [report] is exactly {!Parcoach.Json_report} output, [cache]
    counts this request's summary reuse, and [timings] is
    {!Parcoach.Timings} output (ns per phase: [parse], [hash], [cfg],
    [pword], [phase1..3], [races], [render]).  Invalid programs answer
    [{"id":1,"ok":true,"valid":false,"issues":[...]}] — the same issue
    format [parcoachc --json] prints.  Other methods: ["ping"],
    ["stats"], ["clear"], ["shutdown"]. *)

type t

(** [create ()] — fresh daemon state.  [capacity] bounds the summary
    cache; [jobs] is the default per-request analysis domain count
    (requests can override). *)
val create : ?capacity:int -> ?jobs:int -> unit -> t

val cache : t -> Cache.t

(** Outcome of one analysis request, exposed for the bench harness and
    tests. *)
type analysis = {
  report : Parcoach.Driver.report;
  issues : Minilang.Validate.issue list;  (** Non-fatal validation issues. *)
  reused : int;  (** Functions served from the summary cache. *)
  analysed : int;  (** Functions (re-)analysed this request. *)
  timings : Parcoach.Timings.t;
}

(** Analyse one source text against the warm state.  [Error issues] when
    the program does not parse or validate.  The merged report is
    byte-identical to a cold {!Parcoach.Driver.analyze} of the same
    source whatever mix of cached and fresh functions produced it. *)
val analyze_source :
  t ->
  ?options:Parcoach.Driver.options ->
  ?jobs:int ->
  ?file:string ->
  string ->
  (analysis, Minilang.Validate.issue list) result

(** Handle one already-parsed request object. *)
val handle_request : t -> Json.t -> Json.t

(** Handle one protocol line (parse + dispatch + render). *)
val handle_line : t -> string -> string

(** Serve a channel pair until EOF or a [shutdown] request.  [pool] > 1
    dispatches requests onto that many worker domains (responses are
    written line-atomically, correlated by [id]); the pool is drained
    before returning. *)
val serve : ?pool:int -> t -> in_channel -> out_channel -> unit
