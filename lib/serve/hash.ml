(** Content hashing for the summary cache (see the interface).

    The serialisation writes one tag character per constructor plus
    length-prefixed strings into a buffer, ignoring every {!Loc.t}, and
    digests the bytes (MD5 via [Digest]).  Tags make the encoding
    prefix-free enough that structurally different ASTs cannot collide by
    concatenation; the final guard against digest collisions is the
    cache's structural {!Minilang.Ast.equal_func} check on hit. *)

open Minilang

let add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let add_int buf n =
  Buffer.add_char buf '#';
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';'

let add_bool buf b = Buffer.add_char buf (if b then 'T' else 'F')

let unop_tag = function Ast.Neg -> 'n' | Ast.Not -> '!'

let binop_tag = function
  | Ast.Add -> '+'
  | Ast.Sub -> '-'
  | Ast.Mul -> '*'
  | Ast.Div -> '/'
  | Ast.Mod -> '%'
  | Ast.Eq -> '='
  | Ast.Ne -> 'e'
  | Ast.Lt -> '<'
  | Ast.Le -> 'l'
  | Ast.Gt -> '>'
  | Ast.Ge -> 'g'
  | Ast.And -> '&'
  | Ast.Or -> '|'

let rec add_expr buf = function
  | Ast.Int n ->
      Buffer.add_char buf 'I';
      add_int buf n
  | Ast.Bool b ->
      Buffer.add_char buf 'B';
      add_bool buf b
  | Ast.Var x ->
      Buffer.add_char buf 'V';
      add_str buf x
  | Ast.Unop (op, e) ->
      Buffer.add_char buf 'U';
      Buffer.add_char buf (unop_tag op);
      add_expr buf e
  | Ast.Binop (op, a, b) ->
      Buffer.add_char buf 'O';
      Buffer.add_char buf (binop_tag op);
      add_expr buf a;
      add_expr buf b
  | Ast.Rank -> Buffer.add_char buf 'r'
  | Ast.Size -> Buffer.add_char buf 's'
  | Ast.Tid -> Buffer.add_char buf 't'
  | Ast.Nthreads -> Buffer.add_char buf 'h'

let add_expr_opt buf = function
  | None -> Buffer.add_char buf '0'
  | Some e ->
      Buffer.add_char buf '1';
      add_expr buf e

let add_str_opt buf = function
  | None -> Buffer.add_char buf '0'
  | Some s ->
      Buffer.add_char buf '1';
      add_str buf s

let add_rop buf op = add_str buf (Ast.reduce_op_name op)

let add_collective buf c =
  add_str buf (Ast.collective_name c);
  match c with
  | Ast.Barrier -> ()
  | Ast.Bcast { root; value }
  | Ast.Gather { root; value }
  | Ast.Scatter { root; value } ->
      add_expr buf root;
      add_expr buf value
  | Ast.Reduce { op; root; value } ->
      add_rop buf op;
      add_expr buf root;
      add_expr buf value
  | Ast.Allreduce { op; value }
  | Ast.Scan { op; value }
  | Ast.Reduce_scatter { op; value } ->
      add_rop buf op;
      add_expr buf value
  | Ast.Allgather { value } | Ast.Alltoall { value } -> add_expr buf value

let add_check buf = function
  | Ast.Cc_next_collective { color; coll_name } ->
      Buffer.add_char buf 'C';
      add_int buf color;
      add_str buf coll_name
  | Ast.Cc_return -> Buffer.add_char buf 'R'
  | Ast.Assert_monothread { region } ->
      Buffer.add_char buf 'M';
      add_int buf region
  | Ast.Count_enter { region } ->
      Buffer.add_char buf 'E';
      add_int buf region
  | Ast.Count_exit { region } ->
      Buffer.add_char buf 'X';
      add_int buf region

let rec add_stmt buf s =
  match s.Ast.sdesc with
  | Ast.Decl (x, e) ->
      Buffer.add_char buf 'd';
      add_str buf x;
      add_expr buf e
  | Ast.Assign (x, e) ->
      Buffer.add_char buf 'a';
      add_str buf x;
      add_expr buf e
  | Ast.If (c, bt, bf) ->
      Buffer.add_char buf 'i';
      add_expr buf c;
      add_block buf bt;
      add_block buf bf
  | Ast.While (c, b) ->
      Buffer.add_char buf 'w';
      add_expr buf c;
      add_block buf b
  | Ast.For (x, lo, hi, b) ->
      Buffer.add_char buf 'f';
      add_str buf x;
      add_expr buf lo;
      add_expr buf hi;
      add_block buf b
  | Ast.Return -> Buffer.add_char buf 'q'
  | Ast.Call (g, args) ->
      Buffer.add_char buf 'c';
      add_str buf g;
      add_int buf (List.length args);
      List.iter (add_expr buf) args
  | Ast.Compute e ->
      Buffer.add_char buf 'k';
      add_expr buf e
  | Ast.Print e ->
      Buffer.add_char buf 'p';
      add_expr buf e
  | Ast.Coll (tgt, c) ->
      Buffer.add_char buf 'L';
      add_str_opt buf tgt;
      add_collective buf c
  | Ast.Send { value; dest; tag } ->
      Buffer.add_char buf 'S';
      add_expr buf value;
      add_expr buf dest;
      add_expr buf tag
  | Ast.Recv { target; src; tag } ->
      Buffer.add_char buf 'v';
      add_str buf target;
      add_expr buf src;
      add_expr buf tag
  | Ast.Istart { req; rop } -> (
      Buffer.add_char buf 'I';
      add_str buf req;
      match rop with
      | Ast.Ibarrier -> Buffer.add_char buf 'B'
      | Ast.Iallreduce { op; target; value } ->
          Buffer.add_char buf 'A';
          add_rop buf op;
          add_str buf target;
          add_expr buf value
      | Ast.Isend { value; dest; tag } ->
          Buffer.add_char buf 'D';
          add_expr buf value;
          add_expr buf dest;
          add_expr buf tag
      | Ast.Irecv { target; src; tag } ->
          Buffer.add_char buf 'V';
          add_str buf target;
          add_expr buf src;
          add_expr buf tag)
  | Ast.Wait { req } ->
      Buffer.add_char buf 'W';
      add_str buf req
  | Ast.Test { target; req } ->
      Buffer.add_char buf 'T';
      add_str buf target;
      add_str buf req
  | Ast.Omp_parallel { num_threads; body } ->
      Buffer.add_char buf 'P';
      add_expr_opt buf num_threads;
      add_block buf body
  | Ast.Omp_single { nowait; body } ->
      Buffer.add_char buf '1';
      add_bool buf nowait;
      add_block buf body
  | Ast.Omp_master body ->
      Buffer.add_char buf 'm';
      add_block buf body
  | Ast.Omp_critical (name, body) ->
      Buffer.add_char buf 'x';
      add_str_opt buf name;
      add_block buf body
  | Ast.Omp_barrier -> Buffer.add_char buf 'b'
  | Ast.Omp_for { var; lo; hi; nowait; reduction; body } -> (
      Buffer.add_char buf 'o';
      add_str buf var;
      add_expr buf lo;
      add_expr buf hi;
      add_bool buf nowait;
      (match reduction with
      | None -> Buffer.add_char buf '0'
      | Some (op, x) ->
          Buffer.add_char buf '1';
          add_rop buf op;
          add_str buf x);
      add_block buf body)
  | Ast.Omp_sections { nowait; sections } ->
      Buffer.add_char buf 'z';
      add_bool buf nowait;
      add_int buf (List.length sections);
      List.iter (add_block buf) sections
  | Ast.Check ck ->
      Buffer.add_char buf 'K';
      add_check buf ck

and add_block buf b =
  Buffer.add_char buf '{';
  add_int buf (List.length b);
  List.iter (add_stmt buf) b;
  Buffer.add_char buf '}'

let func_digest (f : Ast.func) =
  let buf = Buffer.create 256 in
  add_str buf f.Ast.fname;
  add_int buf (List.length f.Ast.params);
  List.iter (add_str buf) f.Ast.params;
  add_block buf f.Ast.body;
  Digest.string (Buffer.contents buf)

let options_digest (o : Parcoach.Driver.options) =
  let buf = Buffer.create 64 in
  add_int buf (List.length o.Parcoach.Driver.initial_word);
  List.iter
    (fun tok -> add_str buf (Parcoach.Pword.token_to_string tok))
    o.Parcoach.Driver.initial_word;
  add_str buf (Mpisim.Thread_level.to_string o.Parcoach.Driver.provided_level);
  add_bool buf o.Parcoach.Driver.taint_filter;
  add_bool buf o.Parcoach.Driver.interprocedural;
  add_bool buf o.Parcoach.Driver.races;
  Digest.string (Buffer.contents buf)

(* Names transitively reachable from [fname] through call sites, sorted.
   Unknown callees (rejected by the validator anyway) are skipped;
   recursion terminates because visited names are never re-entered. *)
let reachable callees_of fname =
  let seen = Hashtbl.create 16 in
  let rec visit g =
    if not (Hashtbl.mem seen g) then begin
      Hashtbl.replace seen g ();
      List.iter visit (callees_of g)
    end
  in
  List.iter visit (callees_of fname);
  List.sort String.compare (Hashtbl.fold (fun g () acc -> g :: acc) seen [])

let keys ?digest ~options (program : Ast.program) =
  let func_digest f =
    match digest with
    | Some d -> ( match d f with Some x -> x | None -> func_digest f)
    | None -> func_digest f
  in
  let digests = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace digests f.Ast.fname (func_digest f))
    program.Ast.funcs;
  let callee_tbl = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Hashtbl.replace callee_tbl f.Ast.fname
        (List.sort_uniq String.compare
           (List.filter
              (Hashtbl.mem digests)
              (Parcoach.Callgraph.callees f))))
    program.Ast.funcs;
  let callees_of g =
    Option.value ~default:[] (Hashtbl.find_opt callee_tbl g)
  in
  let odig = options_digest options in
  List.map
    (fun f ->
      let buf = Buffer.create 128 in
      add_str buf (Hashtbl.find digests f.Ast.fname);
      add_str buf odig;
      List.iter
        (fun g ->
          add_str buf g;
          add_str buf (Hashtbl.find digests g))
        (reachable callees_of f.Ast.fname);
      (f, Digest.string (Buffer.contents buf)))
    program.Ast.funcs
