(** Content hashing for the per-function summary cache.

    A function's cache key must change exactly when its analysis result
    could: it covers the function's own name, parameters and body
    {e structure} (source locations excluded, so shifting a function
    around a file, reformatting it, or editing comments does not
    invalidate it), the analysis options, and the name+body digests of
    every function transitively reachable through its call sites — so a
    callee-body edit invalidates all (transitive) callers, which is what
    the interprocedural may-collect summaries and CC call-colours
    require.  Functions the key does {e not} cover (unrelated functions,
    function order in the file) can change freely without invalidation. *)

(** Location-insensitive structural digest of one function (name, params,
    body). *)
val func_digest : Minilang.Ast.func -> string

(** Digest of the analysis options (every field participates). *)
val options_digest : Parcoach.Driver.options -> string

(** [keys ~options program] returns each function of [program], in source
    order, paired with its summary-cache key.  [?digest] is a memo: when
    it returns [Some d] for a function, [d] is used in place of
    [func_digest] (the daemon's parse cache carries each unchanged
    function's digest, so warm requests skip re-serialising bodies). *)
val keys :
  ?digest:(Minilang.Ast.func -> string option) ->
  options:Parcoach.Driver.options ->
  Minilang.Ast.program ->
  (Minilang.Ast.func * string) list
