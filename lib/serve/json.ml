(** Minimal JSON codec for the daemon protocol (see the interface). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let needs_escape c = c = '"' || c = '\\' || Char.code c < 0x20

(* Bulk-copy runs of plain characters; string values as large as whole
   source files pass through here. *)
let escape s =
  let n = String.length s in
  let buf = Buffer.create (n + 8) in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    while !i < n && not (needs_escape (String.unsafe_get s !i)) do
      incr i
    done;
    if !i > start then Buffer.add_substring buf s start (!i - start);
    if !i < n then begin
      (match s.[!i] with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c)));
      incr i
    end
  done;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'
  | Raw s -> Buffer.add_string buf s

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Bad (Printf.sprintf "%s at offset %d" msg st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) word
  then (
    st.pos <- st.pos + n;
    value)
  else fail st (Printf.sprintf "expected '%s'" word)

(* Encode a Unicode code point as UTF-8 bytes. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))

let hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "bad \\u escape"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek st with
    | Some c ->
        v := (!v * 16) + digit c;
        advance st
    | None -> fail st "truncated \\u escape"
  done;
  !v

(* Analysis requests carry whole source files as string values, so this
   is the parser's hot path: plain characters are bulk-copied up to the
   next quote or backslash instead of being inspected one at a time. *)
let string_body st =
  let src = st.src in
  let n = String.length src in
  let buf = Buffer.create 16 in
  let rec loop () =
    let start = st.pos in
    let i = ref start in
    while
      !i < n
      &&
      let c = String.unsafe_get src !i in
      c <> '"' && c <> '\\'
    do
      incr i
    done;
    if !i > start then Buffer.add_substring buf src start (!i - start);
    st.pos <- !i;
    if !i >= n then fail st "unterminated string"
    else if src.[!i] = '"' then advance st
    else begin
      advance st;
      (match peek st with
      | Some '"' ->
          advance st;
          Buffer.add_char buf '"'
      | Some '\\' ->
          advance st;
          Buffer.add_char buf '\\'
      | Some '/' ->
          advance st;
          Buffer.add_char buf '/'
      | Some 'n' ->
          advance st;
          Buffer.add_char buf '\n'
      | Some 't' ->
          advance st;
          Buffer.add_char buf '\t'
      | Some 'r' ->
          advance st;
          Buffer.add_char buf '\r'
      | Some 'b' ->
          advance st;
          Buffer.add_char buf '\b'
      | Some 'f' ->
          advance st;
          Buffer.add_char buf '\012'
      | Some 'u' ->
          advance st;
          add_utf8 buf (hex4 st)
      | _ -> fail st "bad escape");
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let number st =
  let start = st.pos in
  let is_float = ref false in
  let rec loop () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
        advance st;
        loop ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st;
        loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> fail st "bad number"

let rec value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' ->
      advance st;
      Str (string_body st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then (
        advance st;
        List [])
      else
        let rec items acc =
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then (
        advance st;
        Obj [])
      else
        let field () =
          skip_ws st;
          expect st '"';
          let k = string_body st in
          skip_ws st;
          expect st ':';
          let v = value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              List.rev (kv :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match value st with
  | v ->
      skip_ws st;
      if st.pos < String.length s then Error "trailing garbage" else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
