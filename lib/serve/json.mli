(** Minimal JSON values for the daemon's line-delimited protocol.

    Self-contained (no external JSON dependency, like
    {!Parcoach.Json_report}): a value type, a recursive-descent parser and
    a printer.  Numbers without a fraction or exponent parse as [Int];
    everything else numeric parses as [Float].  Object member order is
    preserved.  [Raw] lets already-rendered JSON (a
    {!Parcoach.Json_report} string) be spliced into a response without a
    parse/print round trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string  (** Pre-rendered JSON, emitted verbatim. *)

val parse : string -> (t, string) result

val to_string : t -> string

(** Object member lookup ([None] on absent member or non-object). *)
val member : string -> t -> t option

(** Coercions; [None] when the value has a different shape. *)

val to_str : t -> string option

val to_int : t -> int option

val to_bool : t -> bool option
