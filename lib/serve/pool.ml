(** Promise/stream worker pool over OCaml 5 domains (see the interface). *)

module Promise = struct
  type 'a state = Pending | Done of 'a | Failed of exn

  type 'a t = {
    mutex : Mutex.t;
    cond : Condition.t;
    mutable state : 'a state;
  }

  let create () =
    { mutex = Mutex.create (); cond = Condition.create (); state = Pending }

  let fill t state =
    Mutex.lock t.mutex;
    (match t.state with
    | Pending ->
        t.state <- state;
        Condition.broadcast t.cond
    | Done _ | Failed _ -> ());
    Mutex.unlock t.mutex

  let resolve t v = fill t (Done v)

  let reject t e = fill t (Failed e)

  let await t =
    Mutex.lock t.mutex;
    while t.state = Pending do
      Condition.wait t.cond t.mutex
    done;
    let state = t.state in
    Mutex.unlock t.mutex;
    match state with
    | Done v -> v
    | Failed e -> raise e
    | Pending -> assert false

  let is_resolved t =
    Mutex.lock t.mutex;
    let r = t.state <> Pending in
    Mutex.unlock t.mutex;
    r
end

module Stream = struct
  type 'a t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    nonfull : Condition.t;
    queue : 'a Queue.t;
    capacity : int;
    mutable closed : bool;
  }

  let create capacity =
    if capacity < 1 then invalid_arg "Stream.create: capacity must be >= 1";
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      queue = Queue.create ();
      capacity;
      closed = false;
    }

  let push t v =
    Mutex.lock t.mutex;
    while Queue.length t.queue >= t.capacity && not t.closed do
      Condition.wait t.nonfull t.mutex
    done;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Stream.push: stream is closed"
    end;
    Queue.push v t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  let push_array t arr pos len =
    let stop = pos + len in
    let i = ref pos in
    Mutex.lock t.mutex;
    while !i < stop do
      while Queue.length t.queue >= t.capacity && not t.closed do
        Condition.wait t.nonfull t.mutex
      done;
      if t.closed then begin
        Mutex.unlock t.mutex;
        invalid_arg "Stream.push_array: stream is closed"
      end;
      let room = t.capacity - Queue.length t.queue in
      let n = min room (stop - !i) in
      for k = !i to !i + n - 1 do
        Queue.push arr.(k) t.queue
      done;
      i := !i + n;
      Condition.signal t.nonempty
    done;
    Mutex.unlock t.mutex

  let try_pop t =
    Mutex.lock t.mutex;
    let v = Queue.take_opt t.queue in
    if v <> None then Condition.signal t.nonfull;
    Mutex.unlock t.mutex;
    v

  let pop_upto t ~max:m ~f =
    Mutex.lock t.mutex;
    let n = ref 0 in
    while !n < m && not (Queue.is_empty t.queue) do
      f (Queue.pop t.queue);
      incr n
    done;
    if !n > 0 then Condition.broadcast t.nonfull;
    Mutex.unlock t.mutex;
    !n

  let is_closed t =
    Mutex.lock t.mutex;
    let c = t.closed in
    Mutex.unlock t.mutex;
    c

  let pop t =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    let v = Queue.take_opt t.queue in
    if v <> None then Condition.signal t.nonfull;
    Mutex.unlock t.mutex;
    v

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Condition.broadcast t.nonfull;
    Mutex.unlock t.mutex

  let length t =
    Mutex.lock t.mutex;
    let n = Queue.length t.queue in
    Mutex.unlock t.mutex;
    n
end

(* Int-specialized bounded ring buffer: same blocking/backpressure
   contract as Stream, but elements are unboxed in a flat array and bulk
   transfers are Array.blit copies under one lock — no per-element queue
   cell, no per-element signaling.  Built for high-rate mailboxes (the
   streaming overlay checker moves ~10^6 interned signature ids through
   these). *)
module Ring = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    nonfull : Condition.t;
    buf : int array;
    capacity : int;
    mutable head : int;  (* next read position *)
    mutable size : int;
    mutable closed : bool;
  }

  let create capacity =
    if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      buf = Array.make capacity 0;
      capacity;
      head = 0;
      size = 0;
      closed = false;
    }

  (* Copy [len] elements from [src.(pos..)] into the ring at its write
     position; caller holds the lock and has checked the room. *)
  let unsafe_write t src pos len =
    let tail = (t.head + t.size) mod t.capacity in
    let first = min len (t.capacity - tail) in
    Array.blit src pos t.buf tail first;
    if len > first then Array.blit src (pos + first) t.buf 0 (len - first);
    t.size <- t.size + len

  let push_array t src pos len =
    let stop = pos + len in
    let i = ref pos in
    Mutex.lock t.mutex;
    while !i < stop do
      while t.size >= t.capacity && not t.closed do
        Condition.wait t.nonfull t.mutex
      done;
      if t.closed then begin
        Mutex.unlock t.mutex;
        invalid_arg "Ring.push_array: ring is closed"
      end;
      let n = min (t.capacity - t.size) (stop - !i) in
      unsafe_write t src !i n;
      i := !i + n;
      Condition.signal t.nonempty
    done;
    Mutex.unlock t.mutex

  let push t v = push_array t (Array.make 1 v) 0 1

  (* Blocking single pop; [None] once closed and drained. *)
  let pop t =
    Mutex.lock t.mutex;
    while t.size = 0 && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    let r =
      if t.size = 0 then None
      else begin
        let v = t.buf.(t.head) in
        t.head <- (t.head + 1) mod t.capacity;
        t.size <- t.size - 1;
        Condition.signal t.nonfull;
        Some v
      end
    in
    Mutex.unlock t.mutex;
    r

  (* Non-blocking bulk pop into [dst.(pos..)]: up to [max] elements,
     FIFO, one lock; returns the count copied. *)
  let pop_into t dst pos max =
    Mutex.lock t.mutex;
    let n = min max t.size in
    if n > 0 then begin
      let first = min n (t.capacity - t.head) in
      Array.blit t.buf t.head dst pos first;
      if n > first then Array.blit t.buf 0 dst (pos + first) (n - first);
      t.head <- (t.head + n) mod t.capacity;
      t.size <- t.size - n;
      Condition.broadcast t.nonfull
    end;
    Mutex.unlock t.mutex;
    n

  (* Non-blocking discard of everything queued; returns the count. *)
  let drain t =
    Mutex.lock t.mutex;
    let n = t.size in
    t.head <- 0;
    t.size <- 0;
    if n > 0 then Condition.broadcast t.nonfull;
    Mutex.unlock t.mutex;
    n

  let is_closed t =
    Mutex.lock t.mutex;
    let c = t.closed in
    Mutex.unlock t.mutex;
    c

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Condition.broadcast t.nonfull;
    Mutex.unlock t.mutex

  let length t =
    Mutex.lock t.mutex;
    let n = t.size in
    Mutex.unlock t.mutex;
    n
end

module Workq = struct
  type 'a t = { batches : 'a array array array; next : int Atomic.t array }

  let create batches =
    {
      batches;
      next = Array.init (Array.length batches) (fun _ -> Atomic.make 0);
    }

  let shards t = Array.length t.batches

  let take t ~shard =
    let row = t.batches.(shard) in
    let i = Atomic.fetch_and_add t.next.(shard) 1 in
    if i < Array.length row then Some row.(i) else None

  let steal t ~preferred =
    let n = shards t in
    let rec scan k =
      if k >= n then None
      else
        let shard = (preferred + k) mod n in
        match take t ~shard with
        | Some batch -> Some (shard, batch)
        | None -> scan (k + 1)
    in
    if n = 0 then None else scan 0
end

type t = {
  stream : (unit -> unit) Stream.t;
  workers : unit Domain.t array;
  njobs : int;
  shut : Mutex.t;
  mutable down : bool;
}

let worker stream () =
  let rec loop () =
    match Stream.pop stream with
    | Some job ->
        job ();
        loop ()
    | None -> ()
  in
  loop ()

let create ?queue_capacity ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let capacity =
    match queue_capacity with Some c -> c | None -> max 64 (jobs * 4)
  in
  let stream = Stream.create capacity in
  {
    stream;
    workers = Array.init jobs (fun _ -> Domain.spawn (worker stream));
    njobs = jobs;
    shut = Mutex.create ();
    down = false;
  }

let jobs t = t.njobs

let submit t f =
  let p = Promise.create () in
  Stream.push t.stream (fun () ->
      match f () with
      | v -> Promise.resolve p v
      | exception e -> Promise.reject p e);
  p

let run t f = Promise.await (submit t f)

let shutdown t =
  Mutex.lock t.shut;
  let first = not t.down in
  t.down <- true;
  Mutex.unlock t.shut;
  if first then begin
    Stream.close t.stream;
    Array.iter Domain.join t.workers
  end
