(** Promise/stream worker pool over OCaml 5 domains (see the interface). *)

module Promise = struct
  type 'a state = Pending | Done of 'a | Failed of exn

  type 'a t = {
    mutex : Mutex.t;
    cond : Condition.t;
    mutable state : 'a state;
  }

  let create () =
    { mutex = Mutex.create (); cond = Condition.create (); state = Pending }

  let fill t state =
    Mutex.lock t.mutex;
    (match t.state with
    | Pending ->
        t.state <- state;
        Condition.broadcast t.cond
    | Done _ | Failed _ -> ());
    Mutex.unlock t.mutex

  let resolve t v = fill t (Done v)

  let reject t e = fill t (Failed e)

  let await t =
    Mutex.lock t.mutex;
    while t.state = Pending do
      Condition.wait t.cond t.mutex
    done;
    let state = t.state in
    Mutex.unlock t.mutex;
    match state with
    | Done v -> v
    | Failed e -> raise e
    | Pending -> assert false

  let is_resolved t =
    Mutex.lock t.mutex;
    let r = t.state <> Pending in
    Mutex.unlock t.mutex;
    r
end

module Stream = struct
  type 'a t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    nonfull : Condition.t;
    queue : 'a Queue.t;
    capacity : int;
    mutable closed : bool;
  }

  let create capacity =
    if capacity < 1 then invalid_arg "Stream.create: capacity must be >= 1";
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      queue = Queue.create ();
      capacity;
      closed = false;
    }

  let push t v =
    Mutex.lock t.mutex;
    while Queue.length t.queue >= t.capacity && not t.closed do
      Condition.wait t.nonfull t.mutex
    done;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Stream.push: stream is closed"
    end;
    Queue.push v t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  let pop t =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    let v = Queue.take_opt t.queue in
    if v <> None then Condition.signal t.nonfull;
    Mutex.unlock t.mutex;
    v

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Condition.broadcast t.nonfull;
    Mutex.unlock t.mutex

  let length t =
    Mutex.lock t.mutex;
    let n = Queue.length t.queue in
    Mutex.unlock t.mutex;
    n
end

type t = {
  stream : (unit -> unit) Stream.t;
  workers : unit Domain.t array;
  njobs : int;
  shut : Mutex.t;
  mutable down : bool;
}

let worker stream () =
  let rec loop () =
    match Stream.pop stream with
    | Some job ->
        job ();
        loop ()
    | None -> ()
  in
  loop ()

let create ?queue_capacity ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let capacity =
    match queue_capacity with Some c -> c | None -> max 64 (jobs * 4)
  in
  let stream = Stream.create capacity in
  {
    stream;
    workers = Array.init jobs (fun _ -> Domain.spawn (worker stream));
    njobs = jobs;
    shut = Mutex.create ();
    down = false;
  }

let jobs t = t.njobs

let submit t f =
  let p = Promise.create () in
  Stream.push t.stream (fun () ->
      match f () with
      | v -> Promise.resolve p v
      | exception e -> Promise.reject p e);
  p

let run t f = Promise.await (submit t f)

let shutdown t =
  Mutex.lock t.shut;
  let first = not t.down in
  t.down <- true;
  Mutex.unlock t.shut;
  if first then begin
    Stream.close t.stream;
    Array.iter Domain.join t.workers
  end
