(** Bounded worker pool of OCaml 5 domains, in the direct style of eio's
    concurrency primitives: a write-once {!Promise} for results, a
    bounded blocking {!Stream} as the work queue, and a fixed set of
    worker domains draining it.  The daemon submits one job per request;
    [jobs:1] still runs requests off the calling thread but one at a
    time, so responses are deterministic per request whatever the pool
    width. *)

module Promise : sig
  type 'a t

  val create : unit -> 'a t

  (** Resolve with a value; subsequent resolutions are ignored. *)
  val resolve : 'a t -> 'a -> unit

  (** Resolve with an exception, re-raised by {!await}. *)
  val reject : 'a t -> exn -> unit

  (** Block until resolved; returns the value or re-raises. *)
  val await : 'a t -> 'a

  val is_resolved : 'a t -> bool
end

module Stream : sig
  type 'a t

  (** [create capacity]: a bounded FIFO; {!push} blocks while full. *)
  val create : int -> 'a t

  (** @raise Invalid_argument if the stream is closed. *)
  val push : 'a t -> 'a -> unit

  (** [push_array t arr pos len]: blocking bulk push of
      [arr.(pos .. pos+len-1)] in order, holding the lock once per
      capacity refill instead of once per element.  Blocks (in chunks)
      while the stream is full, exactly like repeated {!push}.
      @raise Invalid_argument if the stream is closed. *)
  val push_array : 'a t -> 'a array -> int -> int -> unit

  (** Blocking pop; [None] once the stream is closed and drained. *)
  val pop : 'a t -> 'a option

  (** Non-blocking pop: [None] when the queue is currently empty
      (whether or not the stream is closed) — batch consumers drain what
      is available and fall back to {!pop} to wait or detect closure. *)
  val try_pop : 'a t -> 'a option

  (** Non-blocking bulk drain under a single lock acquisition: pop up to
      [max] queued elements, calling [f] on each in FIFO order, and
      return how many were popped.  [f] runs with the stream's lock held,
      so it must be fast and must not raise or touch the stream. *)
  val pop_upto : 'a t -> max:int -> f:('a -> unit) -> int

  val is_closed : 'a t -> bool

  (** Close: pushes fail, pops drain the backlog then return [None]. *)
  val close : 'a t -> unit

  val length : 'a t -> int
end

(** Int-specialized bounded ring buffer with the same
    blocking/backpressure contract as {!Stream}: elements live unboxed
    in a flat array and bulk transfers are [Array.blit] copies under a
    single lock.  Built for high-rate mailboxes (e.g. the streaming
    overlay checker's interned-signature queues). *)
module Ring : sig
  type t

  (** [create capacity]: a bounded int FIFO; pushes block while full. *)
  val create : int -> t

  (** Blocking push of one element.
      @raise Invalid_argument if the ring is closed. *)
  val push : t -> int -> unit

  (** [push_array t src pos len]: blocking bulk push of
      [src.(pos .. pos+len-1)] in order, copying in capacity-sized
      chunks under one lock acquisition each.
      @raise Invalid_argument if the ring is closed. *)
  val push_array : t -> int array -> int -> int -> unit

  (** Blocking pop; [None] once the ring is closed and drained. *)
  val pop : t -> int option

  (** [pop_into t dst pos max]: non-blocking bulk pop of up to [max]
      elements into [dst.(pos..)], FIFO, under one lock; returns the
      count copied. *)
  val pop_into : t -> int array -> int -> int -> int

  (** Non-blocking discard of everything queued; returns the count. *)
  val drain : t -> int

  val is_closed : t -> bool

  (** Close: pushes fail, pops drain the backlog then return [None]. *)
  val close : t -> unit

  val length : t -> int
end

(** Sharded batch queue with work stealing: each shard holds a fixed
    array of batches filled up front; workers drain their own shards with
    {!take} and fall back to {!steal} (a round-robin scan from a
    preferred shard) so a slow shard never idles the rest of the pool.
    Claiming is a single [Atomic.fetch_and_add] per batch — every batch
    is handed out exactly once, whatever the worker interleaving. *)
module Workq : sig
  type 'a t

  (** [create batches]: [batches.(s)] are shard [s]'s batches, in the
      order they should be claimed. *)
  val create : 'a array array array -> 'a t

  val shards : 'a t -> int

  (** Claim the next batch of [shard]; [None] once the shard is drained. *)
  val take : 'a t -> shard:int -> 'a array option

  (** Claim a batch from the first non-drained shard at or after
      [preferred] (wrapping); returns the shard it came from. *)
  val steal : 'a t -> preferred:int -> (int * 'a array) option
end

type t

(** [create ~jobs ()] spawns [jobs] worker domains ([jobs >= 1]). *)
val create : ?queue_capacity:int -> jobs:int -> unit -> t

val jobs : t -> int

(** Enqueue a job; the promise resolves with its result (or exception)
    once a worker has run it. *)
val submit : t -> (unit -> 'a) -> 'a Promise.t

(** Run [f] on the pool and block for its result. *)
val run : t -> (unit -> 'a) -> 'a

(** Drain the queue, stop the workers and join their domains.
    Idempotent. *)
val shutdown : t -> unit
