(** Bounded worker pool of OCaml 5 domains, in the direct style of eio's
    concurrency primitives: a write-once {!Promise} for results, a
    bounded blocking {!Stream} as the work queue, and a fixed set of
    worker domains draining it.  The daemon submits one job per request;
    [jobs:1] still runs requests off the calling thread but one at a
    time, so responses are deterministic per request whatever the pool
    width. *)

module Promise : sig
  type 'a t

  val create : unit -> 'a t

  (** Resolve with a value; subsequent resolutions are ignored. *)
  val resolve : 'a t -> 'a -> unit

  (** Resolve with an exception, re-raised by {!await}. *)
  val reject : 'a t -> exn -> unit

  (** Block until resolved; returns the value or re-raises. *)
  val await : 'a t -> 'a

  val is_resolved : 'a t -> bool
end

module Stream : sig
  type 'a t

  (** [create capacity]: a bounded FIFO; {!push} blocks while full. *)
  val create : int -> 'a t

  (** @raise Invalid_argument if the stream is closed. *)
  val push : 'a t -> 'a -> unit

  (** Blocking pop; [None] once the stream is closed and drained. *)
  val pop : 'a t -> 'a option

  (** Close: pushes fail, pops drain the backlog then return [None]. *)
  val close : 'a t -> unit

  val length : 'a t -> int
end

type t

(** [create ~jobs ()] spawns [jobs] worker domains ([jobs >= 1]). *)
val create : ?queue_capacity:int -> jobs:int -> unit -> t

val jobs : t -> int

(** Enqueue a job; the promise resolves with its result (or exception)
    once a worker has run it. *)
val submit : t -> (unit -> 'a) -> 'a Promise.t

(** Run [f] on the pool and block for its result. *)
val run : t -> (unit -> 'a) -> 'a

(** Drain the queue, stop the workers and join their domains.
    Idempotent. *)
val shutdown : t -> unit
