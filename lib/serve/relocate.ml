(** Rewrites cached warning locations onto the fresh source layout (see
    the interface). *)

open Minilang

let locs_of (f : Ast.func) =
  f.Ast.floc :: List.map (fun s -> s.Ast.sloc) (Ast.stmts_of_func f)

let reloc_kind reloc (k : Parcoach.Warning.kind) =
  match k with
  | Parcoach.Warning.Multithreaded_collective _
  | Parcoach.Warning.Level_insufficient _
  | Parcoach.Warning.Word_inconsistency _ ->
      k
  | Parcoach.Warning.Concurrent_collectives c ->
      Parcoach.Warning.Concurrent_collectives
        { c with loc1 = reloc c.loc1; loc2 = reloc c.loc2 }
  | Parcoach.Warning.Collective_mismatch m ->
      Parcoach.Warning.Collective_mismatch
        {
          m with
          sites = List.map reloc m.sites;
          conds = List.map reloc m.conds;
        }
  | Parcoach.Warning.Data_race r ->
      Parcoach.Warning.Data_race
        { r with loc1 = reloc r.loc1; loc2 = reloc r.loc2 }
  | Parcoach.Warning.Request_leak l ->
      Parcoach.Warning.Request_leak
        { l with started = List.map reloc l.started }
  | Parcoach.Warning.Request_double_wait d ->
      Parcoach.Warning.Request_double_wait
        { d with prior = List.map reloc d.prior }
  | Parcoach.Warning.Request_stale_buffer s ->
      Parcoach.Warning.Request_stale_buffer
        { s with started = List.map reloc s.started }
  | Parcoach.Warning.Request_completion_mismatch m ->
      Parcoach.Warning.Request_completion_mismatch
        {
          m with
          sites = List.map reloc m.sites;
          conds = List.map reloc m.conds;
        }

let func_report ~cached ~fresh (fr : Parcoach.Driver.func_report) =
  if not (Ast.equal_func cached fresh) then
    invalid_arg "Relocate.func_report: functions differ structurally";
  let old_locs = locs_of cached and new_locs = locs_of fresh in
  if List.for_all2 Loc.equal old_locs new_locs then fr
  else begin
    let map = Hashtbl.create (List.length old_locs) in
    (* First binding wins: statements sharing a location (builder-made
       code) map consistently because both lists are in source order. *)
    List.iter2
      (fun o n -> if not (Hashtbl.mem map o) then Hashtbl.add map o n)
      old_locs new_locs;
    let reloc l = Option.value ~default:l (Hashtbl.find_opt map l) in
    let warnings =
      List.sort_uniq
        (fun a b ->
          let c = Parcoach.Warning.compare a b in
          if c <> 0 then c else Stdlib.compare a b)
        (List.map
           (fun (w : Parcoach.Warning.t) ->
             {
               w with
               Parcoach.Warning.loc = reloc w.Parcoach.Warning.loc;
               kind = reloc_kind reloc w.Parcoach.Warning.kind;
             })
           fr.Parcoach.Driver.warnings)
    in
    { fr with Parcoach.Driver.warnings }
  end
