(** Relocation of cached summaries onto the current source layout.

    Cache keys are location-insensitive, so a hit can come from a source
    where the (structurally identical) function sat at different lines —
    a comment was edited above it, functions were reordered, the file was
    renamed.  The warnings inside the cached report carry the {e old}
    locations; this pass rewrites them to the fresh function's locations
    so the merged warm report is byte-identical to a cold run.

    The mapping zips the statements of the cached and fresh functions in
    source order (they correspond 1:1 because the cache verified
    {!Minilang.Ast.equal_func}) and substitutes location values; warnings
    are then re-sorted with the driver's comparator, which cold runs use
    on the same set. *)

(** [func_report ~cached ~fresh fr] is [fr] with every warning location
    rewritten from [cached]'s layout to [fresh]'s.  Cheap no-op when the
    layouts already coincide.
    @raise Invalid_argument if the two functions are not structurally
    equal. *)
val func_report :
  cached:Minilang.Ast.func ->
  fresh:Minilang.Ast.func ->
  Parcoach.Driver.func_report ->
  Parcoach.Driver.func_report
