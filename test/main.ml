(** Test runner aggregating every suite. *)

let () =
  Alcotest.run "parcoach-repro"
    (Test_minilang.suite @ Test_cfg.suite @ Test_pword.suite @ Test_phases.suite @ Test_mpisim.suite @ Test_ompsim.suite @ Test_sim.suite @ Test_instrument.suite @ Test_endtoend.suite @ Test_qcheck.suite @ Test_mustlike.suite @ Test_stream.suite @ Test_interproc_ext.suite @ Test_programs.suite @ Test_explore.suite @ Test_p2p.suite @ Test_json.suite @ Test_perf.suite @ Test_compile.suite @ Test_races.suite @ Test_requests.suite @ Test_dpor.suite @ Test_serve.suite @ Test_farm.suite)
