(** Tests for the CFG construction, dominance machinery and dataflow
    analyses. *)

open Cfg

let parse src = Minilang.Parser.parse_string ~file:"test" src

let cfg_of src = Build.of_func (Minilang.Ast.main_func (parse src))

let count_kind g p = List.length (Graph.filter_nodes g p)

let build_tests =
  [
    Alcotest.test_case "entry and exit are nodes 0 and 1" `Quick (fun () ->
        let g = cfg_of "func main() { }" in
        Alcotest.(check bool) "entry kind" true (Graph.kind g Graph.entry_id = Graph.Entry);
        Alcotest.(check bool) "exit kind" true (Graph.kind g Graph.exit_id = Graph.Exit);
        Alcotest.(check bool) "edge" true (Graph.has_edge g Graph.entry_id Graph.exit_id));
    Alcotest.test_case "straight-line statements share a block" `Quick (fun () ->
        let g = cfg_of "func main() { var a = 1; a = 2; compute(a); print(a); }" in
        Alcotest.(check int) "one simple block" 1
          (count_kind g (function Graph.Simple (_ :: _) -> true | _ -> false)));
    Alcotest.test_case "collective gets its own node" `Quick (fun () ->
        let g = cfg_of "func main() { var a = 1; MPI_Barrier(); a = 2; }" in
        Alcotest.(check int) "one collective" 1 (List.length (Graph.collective_nodes g)));
    Alcotest.test_case "if produces cond with true branch first" `Quick (fun () ->
        let g = cfg_of "func main() { if (rank() == 0) { compute(1); } else { compute(2); } }" in
        let conds = Graph.filter_nodes g (function Graph.Cond _ -> true | _ -> false) in
        Alcotest.(check int) "one cond" 1 (List.length conds);
        let c = List.hd conds in
        Alcotest.(check int) "two successors" 2 (List.length (Graph.succs g c)));
    Alcotest.test_case "while produces a back edge" `Quick (fun () ->
        let g = cfg_of "func main() { var i = 0; while (i < 3) { i = i + 1; } }" in
        let conds = Graph.filter_nodes g (function Graph.Cond _ -> true | _ -> false) in
        let c = List.hd conds in
        Alcotest.(check bool) "back edge exists" true
          (List.exists (fun p -> Traversal.path_exists g c p) (Graph.preds g c)));
    Alcotest.test_case "for desugars to init + cond + incr" `Quick (fun () ->
        let g = cfg_of "func main() { for i = 0 to 4 { compute(i); } }" in
        Alcotest.(check int) "one cond" 1
          (count_kind g (function Graph.Cond _ -> true | _ -> false)));
    Alcotest.test_case "parallel region: begin, end, implicit barrier" `Quick
      (fun () ->
        let g = cfg_of "func main() { pragma omp parallel { compute(1); } }" in
        Alcotest.(check int) "one begin" 1
          (count_kind g (function
            | Graph.Omp_begin { kind = Graph.Rparallel; _ } -> true
            | _ -> false));
        Alcotest.(check int) "one end" 1
          (count_kind g (function
            | Graph.Omp_end { kind = Graph.Rparallel; _ } -> true
            | _ -> false));
        Alcotest.(check int) "one implicit barrier" 1
          (count_kind g (function
            | Graph.Barrier_node { implicit = true; _ } -> true
            | _ -> false)));
    Alcotest.test_case "single nowait has no implicit barrier" `Quick (fun () ->
        let g =
          cfg_of
            "func main() { pragma omp parallel { pragma omp single nowait { compute(1); } } }"
        in
        (* only the parallel end barrier remains *)
        Alcotest.(check int) "one implicit barrier" 1
          (count_kind g (function
            | Graph.Barrier_node { implicit = true; _ } -> true
            | _ -> false)));
    Alcotest.test_case "omp_end region points at its begin" `Quick (fun () ->
        let g = cfg_of "func main() { pragma omp parallel { pragma omp single { compute(1); } } }" in
        List.iter
          (fun id ->
            match Graph.kind g id with
            | Graph.Omp_end { region; _ } -> (
                match Graph.kind g region with
                | Graph.Omp_begin _ -> ()
                | _ -> Alcotest.fail "region id is not a begin node")
            | _ -> ())
          (Graph.filter_nodes g (fun _ -> true)));
    Alcotest.test_case "sections: one S region per section" `Quick (fun () ->
        let g =
          cfg_of
            "func main() { pragma omp sections { section { compute(1); } section { compute(2); } } }"
        in
        Alcotest.(check int) "two section begins" 2
          (count_kind g (function
            | Graph.Omp_begin { kind = Graph.Rsection; _ } -> true
            | _ -> false));
        Alcotest.(check int) "one dispatch" 1
          (count_kind g (function
            | Graph.Omp_begin { kind = Graph.Rsections _; _ } -> true
            | _ -> false)));
    Alcotest.test_case "return connects to exit and kills fallthrough" `Quick
      (fun () ->
        let g = cfg_of "func main() { return; compute(1); }" in
        Alcotest.(check int) "no simple blocks (dead code dropped)" 0
          (count_kind g (function Graph.Simple (_ :: _) -> true | _ -> false));
        Alcotest.(check int) "one return node" 1
          (count_kind g (function Graph.Return_site _ -> true | _ -> false)));
    Alcotest.test_case "every reachable node reaches exit" `Quick (fun () ->
        let g =
          cfg_of
            {|func main() { var i = 0; while (i < 3) { if (i == 1) { return; } i = i + 1; }
               MPI_Barrier(); }|}
        in
        let reach = Traversal.reachable g in
        Graph.iter_nodes g (fun n ->
            if reach.(n.Graph.id) then
              Alcotest.(check bool)
                (Printf.sprintf "node %d reaches exit" n.Graph.id)
                true
                (Traversal.path_exists g n.Graph.id Graph.exit_id)));
  ]

(* A hand-built diamond with a loop, for dominance checks:
     0 -> 2 -> 3 -> 4 -> 1 (exit)
          2 -> 4
          4 -> 2 (back edge via cond? simplified)        *)
let diamond_tests =
  [
    Alcotest.test_case "dominators on an if-diamond" `Quick (fun () ->
        let g =
          cfg_of
            "func main() { if (rank() == 0) { compute(1); } else { compute(2); } print(0); }"
        in
        let dom = Dominance.compute g Dominance.Forward in
        let cond =
          List.hd (Graph.filter_nodes g (function Graph.Cond _ -> true | _ -> false))
        in
        (* The cond dominates both branches and the join. *)
        Graph.iter_nodes g (fun n ->
            if n.Graph.id <> Graph.entry_id && Dominance.is_reachable dom n.Graph.id
            then
              if n.Graph.id <> cond && Traversal.path_exists g cond n.Graph.id
              then
                Alcotest.(check bool)
                  (Printf.sprintf "cond dominates %d" n.Graph.id)
                  true
                  (Dominance.dominates dom cond n.Graph.id)));
    Alcotest.test_case "post-dominance frontier of a branch node" `Quick
      (fun () ->
        let g =
          cfg_of
            "func main() { if (rank() == 0) { MPI_Barrier(); } compute(1); }"
        in
        let coll = List.hd (Graph.collective_nodes g) in
        let pdf = Dominance.pdf_plus g [ coll ] in
        let conds = Graph.filter_nodes g (function Graph.Cond _ -> true | _ -> false) in
        Alcotest.(check bool) "cond in PDF+" true
          (List.exists (fun c -> List.mem c pdf) conds));
    Alcotest.test_case "unconditional collective has empty PDF+" `Quick
      (fun () ->
        let g = cfg_of "func main() { MPI_Barrier(); compute(1); }" in
        let coll = List.hd (Graph.collective_nodes g) in
        Alcotest.(check (list int)) "empty" [] (Dominance.pdf_plus g [ coll ]));
    Alcotest.test_case "collective in loop: loop cond in PDF+" `Quick (fun () ->
        let g =
          cfg_of "func main() { var i = 0; while (i < 3) { MPI_Barrier(); i = i + 1; } }"
        in
        let coll = List.hd (Graph.collective_nodes g) in
        let pdf = Dominance.pdf_plus g [ coll ] in
        Alcotest.(check bool) "nonempty" true (pdf <> []));
    Alcotest.test_case "idom of exit is the join of all returns" `Quick
      (fun () ->
        let g =
          cfg_of
            "func main() { if (rank() == 0) { return; } else { return; } }"
        in
        let pdom = Dominance.compute g Dominance.Backward in
        Alcotest.(check bool) "entry reachable in reverse" true
          (Dominance.is_reachable pdom Graph.entry_id));
    Alcotest.test_case "dominator tree children partition nodes" `Quick
      (fun () ->
        let g =
          cfg_of
            {|func main() { var i = 0; while (i < 4) { if (i == 2) { compute(1); } i = i + 1; } }|}
        in
        let dom = Dominance.compute g Dominance.Forward in
        let ch = Dominance.children dom in
        let total = Array.fold_left (fun acc l -> acc + List.length l) 0 ch in
        let reachable =
          Graph.fold_nodes g
            (fun acc n -> if Dominance.is_reachable dom n.Graph.id then acc + 1 else acc)
            0
        in
        (* every reachable node except the root has exactly one parent *)
        Alcotest.(check int) "tree size" (reachable - 1) total);
  ]

let loop_tests =
  [
    Alcotest.test_case "while loop detected" `Quick (fun () ->
        let g = cfg_of "func main() { var i = 0; while (i < 3) { i = i + 1; } }" in
        let loops = Loops.detect g in
        Alcotest.(check int) "one loop" 1 (List.length loops));
    Alcotest.test_case "nested loops detected" `Quick (fun () ->
        let g =
          cfg_of
            {|func main() { for i = 0 to 3 { for j = 0 to 3 { compute(i + j); } } }|}
        in
        let loops = Loops.detect g in
        Alcotest.(check int) "two loops" 2 (List.length loops);
        (* inner body is contained in outer body *)
        match List.sort (fun a b -> compare (List.length a.Loops.body) (List.length b.Loops.body)) loops with
        | [ inner; outer ] ->
            Alcotest.(check bool) "nesting" true
              (List.for_all (fun n -> List.mem n outer.Loops.body) inner.Loops.body)
        | _ -> Alcotest.fail "expected two loops");
    Alcotest.test_case "straight-line code has no loops" `Quick (fun () ->
        let g = cfg_of "func main() { compute(1); MPI_Barrier(); }" in
        Alcotest.(check int) "none" 0 (List.length (Loops.detect g)));
  ]

module SS = Dataflow.StringSet

let dataflow_tests =
  [
    Alcotest.test_case "liveness: variable live across a use" `Quick (fun () ->
        let g = cfg_of "func main() { var a = 1; MPI_Barrier(); print(a); }" in
        let live_in, _ = Dataflow.liveness g in
        let coll = List.hd (Graph.collective_nodes g) in
        Alcotest.(check bool) "a live at collective" true
          (SS.mem "a" live_in.(coll)));
    Alcotest.test_case "liveness: dead after last use" `Quick (fun () ->
        let g = cfg_of "func main() { var a = 1; print(a); MPI_Barrier(); }" in
        let live_in, _ = Dataflow.liveness g in
        let coll = List.hd (Graph.collective_nodes g) in
        Alcotest.(check bool) "a dead at collective" false
          (SS.mem "a" live_in.(coll)));
    Alcotest.test_case "reaching definitions across a branch" `Quick (fun () ->
        let g =
          cfg_of
            {|func main() { var a = 1; if (rank() == 0) { a = 2; } print(a); MPI_Barrier(); }|}
        in
        let reach_in, _ = Dataflow.reaching_definitions g in
        let coll = List.hd (Graph.collective_nodes g) in
        let defs_of_a =
          Dataflow.DefSet.filter (fun (x, _) -> x = "a") reach_in.(coll)
        in
        Alcotest.(check int) "two defs of a reach the end" 2
          (Dataflow.DefSet.cardinal defs_of_a));
    Alcotest.test_case "constant propagation through arithmetic" `Quick
      (fun () ->
        let g =
          cfg_of
            "func main() { var a = 2; var b = a * 3; MPI_Barrier(); print(b); }"
        in
        let _, out = Dataflow.constant_propagation g in
        let coll = List.hd (Graph.collective_nodes g) in
        (match Dataflow.ConstMap.find_opt "b" out.(coll) with
        | Some (Dataflow.Const 6) -> ()
        | _ -> Alcotest.fail "b should be constant 6"));
    Alcotest.test_case "constant propagation: join of different values" `Quick
      (fun () ->
        let g =
          cfg_of
            {|func main() { var a = 1; if (rank() == 0) { a = 2; } MPI_Barrier(); print(a); }|}
        in
        let _, out = Dataflow.constant_propagation g in
        let coll = List.hd (Graph.collective_nodes g) in
        (match Dataflow.ConstMap.find_opt "a" out.(coll) with
        | Some Dataflow.NonConst -> ()
        | _ -> Alcotest.fail "a should be non-constant after the join"));
    Alcotest.test_case "rank taint: direct and transitive" `Quick (fun () ->
        let g =
          cfg_of
            {|func main() { var r = rank(); var t = r * 2; var c = 5;
               if (t > 0) { MPI_Barrier(); } if (c > 0) { MPI_Barrier(); } }|}
        in
        let dep = Dataflow.cond_rank_dependent g ~params:[] in
        let conds = Graph.filter_nodes g (function Graph.Cond _ -> true | _ -> false) in
        (match conds with
        | [ c1; c2 ] ->
            Alcotest.(check bool) "t > 0 is rank dependent" true (dep c1);
            Alcotest.(check bool) "c > 0 is not" false (dep c2)
        | _ -> Alcotest.fail "expected two conds"));
    Alcotest.test_case "rank taint: allreduce launders, scan taints" `Quick
      (fun () ->
        let g =
          cfg_of
            {|func main() { var r = rank(); var a = 0; a = MPI_Allreduce(r, sum);
               var s = 0; s = MPI_Scan(r, sum);
               if (a > 0) { MPI_Barrier(); } if (s > 0) { MPI_Barrier(); } }|}
        in
        let dep = Dataflow.cond_rank_dependent g ~params:[] in
        let conds = Graph.filter_nodes g (function Graph.Cond _ -> true | _ -> false) in
        (match conds with
        | [ c1; c2 ] ->
            Alcotest.(check bool) "allreduce result is symmetric" false (dep c1);
            Alcotest.(check bool) "scan result is rank dependent" true (dep c2)
        | _ -> Alcotest.fail "expected two conds"));
    Alcotest.test_case "rank taint: parameters are conservatively tainted"
      `Quick (fun () ->
        let p = parse "func f(n) { if (n > 0) { MPI_Barrier(); } } func main() { f(3); }" in
        let f = List.hd (List.filter (fun (fn : Minilang.Ast.func) -> fn.Minilang.Ast.fname = "f") (p.Minilang.Ast.funcs)) in
        let g = Build.of_func f in
        let dep = Dataflow.cond_rank_dependent g ~params:[ "n" ] in
        let conds = Graph.filter_nodes g (function Graph.Cond _ -> true | _ -> false) in
        Alcotest.(check bool) "param-dependent cond flagged" true
          (dep (List.hd conds)));
    Alcotest.test_case "taint is killed by constant reassignment" `Quick
      (fun () ->
        let g =
          cfg_of
            {|func main() { var r = rank(); r = 7; if (r > 0) { MPI_Barrier(); } }|}
        in
        let dep = Dataflow.cond_rank_dependent g ~params:[] in
        let conds = Graph.filter_nodes g (function Graph.Cond _ -> true | _ -> false) in
        Alcotest.(check bool) "untainted after kill" false (dep (List.hd conds)));
  ]

let dataflow2_tests =
  [
    Alcotest.test_case "available expressions flow across straight lines"
      `Quick (fun () ->
        let g =
          cfg_of
            "func main() { var a = 1; var b = 2; var c = a + b; MPI_Barrier(); var d = a + b; print(c + d); }"
        in
        let avail_in, _ = Dataflow.available_expressions g in
        let coll = List.hd (Graph.collective_nodes g) in
        let has_sum =
          Dataflow.ExprSet.exists
            (fun e ->
              match e with
              | Minilang.Ast.Binop (Minilang.Ast.Add, Minilang.Ast.Var "a", Minilang.Ast.Var "b") ->
                  true
              | _ -> false)
            avail_in.(coll)
        in
        Alcotest.(check bool) "a+b available at the barrier" true has_sum);
    Alcotest.test_case "redefinition kills available expressions" `Quick
      (fun () ->
        let g =
          cfg_of
            "func main() { var a = 1; var b = 2; var c = a + b; a = 9; MPI_Barrier(); print(c); }"
        in
        let avail_in, _ = Dataflow.available_expressions g in
        let coll = List.hd (Graph.collective_nodes g) in
        let has_sum =
          Dataflow.ExprSet.exists
            (fun e ->
              match e with
              | Minilang.Ast.Binop (Minilang.Ast.Add, Minilang.Ast.Var "a", Minilang.Ast.Var "b") ->
                  true
              | _ -> false)
            avail_in.(coll)
        in
        Alcotest.(check bool) "killed by a = 9" false has_sum);
    Alcotest.test_case "available expressions: must-join at a branch" `Quick
      (fun () ->
        (* The expression is computed in only one branch: not available
           after the join. *)
        let g =
          cfg_of
            {|func main() { var a = 1; var b = 2; var c = 0;
               if (rank() == 0) { c = a + b; } MPI_Barrier(); print(c); }|}
        in
        let avail_in, _ = Dataflow.available_expressions g in
        let coll = List.hd (Graph.collective_nodes g) in
        let has_sum =
          Dataflow.ExprSet.exists
            (fun e ->
              match e with
              | Minilang.Ast.Binop (Minilang.Ast.Add, Minilang.Ast.Var "a", Minilang.Ast.Var "b") ->
                  true
              | _ -> false)
            avail_in.(coll)
        in
        Alcotest.(check bool) "not available (one branch only)" false has_sum);
    Alcotest.test_case "copy propagation tracks x := y" `Quick (fun () ->
        let g =
          cfg_of
            "func main() { var y = 5; var x = y; MPI_Barrier(); print(x); }"
        in
        let in_maps, _ = Dataflow.copy_propagation g in
        let coll = List.hd (Graph.collective_nodes g) in
        Alcotest.(check (option string)) "x copies y" (Some "y")
          (Dataflow.CopyMap.find_opt "x" in_maps.(coll)));
    Alcotest.test_case "copy propagation kills on source redefinition" `Quick
      (fun () ->
        let g =
          cfg_of
            "func main() { var y = 5; var x = y; y = 6; MPI_Barrier(); print(x); }"
        in
        let in_maps, _ = Dataflow.copy_propagation g in
        let coll = List.hd (Graph.collective_nodes g) in
        Alcotest.(check (option string)) "killed" None
          (Dataflow.CopyMap.find_opt "x" in_maps.(coll)));
    Alcotest.test_case "copy propagation survives a loop without kills" `Quick
      (fun () ->
        let g =
          cfg_of
            {|func main() { var y = 5; var x = y; var i = 0;
               while (i < 3) { compute(x); i = i + 1; } MPI_Barrier(); }|}
        in
        let in_maps, _ = Dataflow.copy_propagation g in
        let coll = List.hd (Graph.collective_nodes g) in
        Alcotest.(check (option string)) "still a copy after the loop"
          (Some "y")
          (Dataflow.CopyMap.find_opt "x" in_maps.(coll)));
    Alcotest.test_case "copy propagation: must-join disagreement kills" `Quick
      (fun () ->
        let g =
          cfg_of
            {|func main() { var y = 5; var z = 6; var x = 0;
               if (rank() == 0) { x = y; } else { x = z; } MPI_Barrier(); }|}
        in
        let in_maps, _ = Dataflow.copy_propagation g in
        let coll = List.hd (Graph.collective_nodes g) in
        Alcotest.(check (option string)) "ambiguous copy dropped" None
          (Dataflow.CopyMap.find_opt "x" in_maps.(coll)));
  ]

let dot_tests =
  [
    Alcotest.test_case "dot output mentions every node" `Quick (fun () ->
        let g = cfg_of "func main() { if (rank() == 0) { MPI_Barrier(); } }" in
        let dot = Dot.to_dot g in
        Graph.iter_nodes g (fun n ->
            let needle = Printf.sprintf "n%d [" n.Graph.id in
            let contains =
              let rec go i =
                i + String.length needle <= String.length dot
                && (String.sub dot i (String.length needle) = needle || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) (Printf.sprintf "node %d present" n.Graph.id) true contains));
    Alcotest.test_case "dot escapes quotes" `Quick (fun () ->
        Alcotest.(check string) "escaped" "a\\\"b" (Dot.escape "a\"b"));
  ]

let invariant_tests =
  [
    Alcotest.test_case "all sample constructs build well-formed graphs" `Quick
      (fun () ->
        List.iter
          (fun src ->
            let g = cfg_of src in
            match Invariants.check g with
            | [] -> ()
            | vs ->
                Alcotest.failf "violations for %s: %s" src
                  (String.concat "; " vs))
          [
            "func main() { }";
            "func main() { return; }";
            "func main() { if (rank() == 0) { } else { } }";
            "func main() { if (rank() == 0) { return; } else { return; } }";
            {|func main() { var i = 0; while (i < 3) { i = i + 1; } }|};
            {|func main() { pragma omp parallel { pragma omp sections {
               section { compute(1); } section { compute(2); } } } }|};
            {|func main() { pragma omp parallel { pragma omp for i = 0 to 4 {
               if (i == 2) { compute(1); } } pragma omp single { MPI_Barrier(); } } }|};
          ]);
    Alcotest.test_case "benchmark graphs are well-formed" `Quick (fun () ->
        List.iter
          (fun (e : Benchsuite.Catalog.entry) ->
            List.iter
              (fun g ->
                Alcotest.(check (list string))
                  (e.Benchsuite.Catalog.name ^ "/" ^ g.Graph.fname)
                  [] (Invariants.check g))
              (Build.of_program (e.Benchsuite.Catalog.generate_small ())))
          Benchsuite.Catalog.all);
    Alcotest.test_case "implicit barriers sit exactly after promised ends"
      `Quick (fun () ->
        let g =
          cfg_of
            {|func main() { pragma omp parallel {
               pragma omp single nowait { compute(1); }
               pragma omp single { compute(2); }
               pragma omp master { compute(3); }
               pragma omp critical { compute(4); }
               pragma omp for i = 0 to 4 nowait { compute(i); }
               pragma omp for i = 0 to 4 { compute(i); } } }|}
        in
        Alcotest.(check (list string)) "well-formed" [] (Invariants.check g);
        (* Implicit barriers: parallel + single + for = 3 (the
           nowait/master/critical regions contribute none), each right
           after the end of the region that promises it. *)
        let implicit =
          Graph.filter_nodes g (function
            | Graph.Barrier_node { implicit = true; _ } -> true
            | _ -> false)
        in
        Alcotest.(check int) "three implicit barriers" 3 (List.length implicit);
        let pred_kinds =
          List.sort compare
            (List.map
               (fun id ->
                 match Graph.preds g id with
                 | [ p ] -> (
                     match Graph.kind g p with
                     | Graph.Omp_end { kind; _ } -> Graph.region_kind_name kind
                     | _ -> "<not an end>")
                 | _ -> "<multiple preds>")
               implicit)
        in
        Alcotest.(check (list string)) "each after its region end"
          (List.sort compare [ "parallel"; "single"; "for" ])
          pred_kinds);
    Alcotest.test_case "misplaced implicit barrier is reported" `Quick
      (fun () ->
        (* Hand-build a graph where an implicit barrier follows a master
           end: entry -> begin(master) -> end -> barrier(implicit) -> exit. *)
        let open Minilang in
        let contains_sub hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        let g = Graph.create "bad" in
        let stmt = Ast.mk (Ast.Omp_master []) in
        let b = Graph.add_node g (Graph.Omp_begin { kind = Graph.Rmaster; stmt }) in
        let e =
          Graph.add_node g
            (Graph.Omp_end { kind = Graph.Rmaster; region = b; stmt })
        in
        let bar =
          Graph.add_node g
            (Graph.Barrier_node { implicit = true; loc = Loc.none })
        in
        Graph.add_edge g g.Graph.entry b;
        Graph.add_edge g b e;
        Graph.add_edge g e bar;
        Graph.add_edge g bar g.Graph.exit;
        let vs = Invariants.check g in
        Alcotest.(check bool) "violation reported" true
          (List.exists
             (fun v ->
               contains_sub v "implicit barrier"
               || contains_sub v "followed by an implicit barrier")
             vs));
  ]

let suite =
  [
    ("cfg.build", build_tests);
    ("cfg.invariants", invariant_tests);
    ("cfg.dominance", diamond_tests);
    ("cfg.loops", loop_tests);
    ("cfg.dataflow", dataflow_tests);
    ("cfg.dataflow2", dataflow2_tests);
    ("cfg.dot", dot_tests);
  ]
