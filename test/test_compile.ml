(** Equivalence of the two interpreter cores: the compiled slot-resolved
    core ([Sim.run] = [Sim.make] + [Sim.run_compiled]) must be
    observationally identical to the reference AST walker
    ([Sim.run_reference]) — same outcomes, print traces, step counts,
    and, under a probe, the same number of recorded state fingerprints
    with bit-identical values.  Also pins the compile-time scoping rules
    (shadowing, privatized loop variables, function parameters) and the
    scheduler's scripted-choice indexing. *)

open Minilang

let mk = Ast.mk ~loc:Loc.none

let config ?(nranks = 2) ?(nthreads = 2) schedule =
  {
    Interp.Sim.nranks;
    default_nthreads = nthreads;
    schedule;
    max_steps = 200_000;
    entry = "main";
    record_trace = true;
    thread_level = Mpisim.Thread_level.Multiple;
  }

(* Observables of one run: outcome, print trace, step count. *)
let observe (r : Interp.Sim.result) =
  (r.Interp.Sim.outcome, Interp.Sim.trace r, r.Interp.Sim.stats.Interp.Sim.steps)

let schedules =
  [
    `Round_robin;
    `Random 42;
    `Random 7;
    `Random 1337;
    `Scripted [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5; 8 ];
  ]

(* Run both cores under every schedule and insist on identical
   observables; returns the compiled observables for further checks. *)
let both_agree ?nranks ?nthreads program =
  List.map
    (fun schedule ->
      let config = config ?nranks ?nthreads schedule in
      let reference = Interp.Sim.run_reference ~config program in
      let compiled = Interp.Sim.run ~config program in
      Alcotest.(check bool)
        "compiled = reference (outcome, trace, steps)" true
        (observe reference = observe compiled);
      observe compiled)
    schedules

(* ------------------------------------------------------------------ *)
(* Unit programs pinning the scoping rules                              *)
(* ------------------------------------------------------------------ *)

let test_shadowing () =
  (* An inner declaration shadows; leaving the block unshadows. *)
  let body =
    [
      mk (Ast.Decl ("x", Ast.Int 1));
      mk
        (Ast.If
           ( Ast.Int 1,
             [ mk (Ast.Decl ("x", Ast.Int 2)); mk (Ast.Print (Ast.Var "x")) ],
             [] ));
      mk (Ast.Print (Ast.Var "x"));
    ]
  in
  let program =
    Builder.number_lines
      { Ast.funcs = [ { Ast.fname = "main"; params = []; body; floc = Loc.none } ] }
  in
  let obs = both_agree ~nranks:1 program in
  let _, trace, _ = List.hd obs in
  Alcotest.(check (list (triple int int int)))
    "inner 2, outer 1" [ (0, 0, 2); (0, 0, 1) ] trace

let test_loop_privatization () =
  (* The worksharing loop variable is private to each iteration and does
     not leak into (or read from) an outer binding of the same name;
     reduction accumulators combine into the shared cell at chunk end. *)
  let body =
    [
      mk (Ast.Decl ("i", Ast.Int 100));
      mk (Ast.Decl ("s", Ast.Int 0));
      mk
        (Ast.Omp_parallel
           {
             num_threads = Some (Ast.Int 2);
             body =
               [
                 mk
                   (Ast.Omp_for
                      {
                        var = "i";
                        lo = Ast.Int 0;
                        hi = Ast.Int 5;
                        nowait = false;
                        reduction = Some (Ast.Rsum, "s");
                        body =
                          [
                            mk
                              (Ast.Assign
                                 ( "s",
                                   Ast.Binop (Ast.Add, Ast.Var "s", Ast.Var "i")
                                 ));
                          ];
                      });
               ];
           });
      mk (Ast.Print (Ast.Var "i"));
      mk (Ast.Print (Ast.Var "s"));
    ]
  in
  let program =
    Builder.number_lines
      { Ast.funcs = [ { Ast.fname = "main"; params = []; body; floc = Loc.none } ] }
  in
  let obs = both_agree ~nranks:1 program in
  let _, trace, _ = List.hd obs in
  Alcotest.(check (list (triple int int int)))
    "outer i untouched, reduction = 0+1+2+3+4"
    [ (0, 0, 100); (0, 0, 10) ]
    trace

let test_function_params () =
  (* Parameters land in callee-frame slots; recursion re-enters the
     (mutable) compiled body; [return] unwinds to the call marker. *)
  let countdown =
    {
      Ast.fname = "countdown";
      params = [ "n" ];
      body =
        [
          mk
            (Ast.If
               ( Ast.Binop (Ast.Le, Ast.Var "n", Ast.Int 0),
                 [ mk Ast.Return ],
                 [] ));
          mk (Ast.Print (Ast.Var "n"));
          mk (Ast.Call ("countdown", [ Ast.Binop (Ast.Sub, Ast.Var "n", Ast.Int 1) ]));
        ];
      floc = Loc.none;
    }
  in
  let add =
    {
      Ast.fname = "add";
      params = [ "a"; "b" ];
      body = [ mk (Ast.Print (Ast.Binop (Ast.Add, Ast.Var "a", Ast.Var "b"))) ];
      floc = Loc.none;
    }
  in
  let main =
    {
      Ast.fname = "main";
      params = [];
      body =
        [
          mk (Ast.Call ("countdown", [ Ast.Int 3 ]));
          mk (Ast.Call ("add", [ Ast.Int 2; Ast.Int 40 ]));
        ];
      floc = Loc.none;
    }
  in
  let program = Builder.number_lines { Ast.funcs = [ main; countdown; add ] } in
  let obs = both_agree ~nranks:1 program in
  let _, trace, _ = List.hd obs in
  Alcotest.(check (list (triple int int int)))
    "3 2 1 then 42"
    [ (0, 0, 3); (0, 0, 2); (0, 0, 1); (0, 0, 42) ]
    trace

let test_scripted_indexing () =
  (* Scripted choices index runnable tasks as ((choice mod n) + n) mod n:
     negative and out-of-range scripts must replay identically on both
     cores. *)
  let body =
    [
      mk
        (Ast.Omp_parallel
           {
             num_threads = Some (Ast.Int 3);
             body = [ mk (Ast.Print Ast.Tid) ];
           });
    ]
  in
  let program =
    Builder.number_lines
      { Ast.funcs = [ { Ast.fname = "main"; params = []; body; floc = Loc.none } ] }
  in
  List.iter
    (fun script ->
      let config = config ~nranks:1 (`Scripted script) in
      let reference = Interp.Sim.run_reference ~config program in
      let compiled = Interp.Sim.run ~config program in
      Alcotest.(check bool)
        "identical observables under hostile scripts" true
        (observe reference = observe compiled))
    [
      [ -7; 13; -2; 5; 0 ];
      [ 1_000_000; -1_000_000; 3; -1 ];
      [ min_int + 1; max_int ];
    ]

(* ------------------------------------------------------------------ *)
(* Fingerprint parity on the reproducer catalogue                       *)
(* ------------------------------------------------------------------ *)

let test_reproducer_fingerprints () =
  List.iter
    (fun entry ->
      let program = Benchsuite.Reproducers.program entry in
      let ids = Interp.Sim.stmt_ids program in
      let depth = 12 in
      List.iter
        (fun schedule ->
          let config =
            config ~nranks:3 ~nthreads:2 schedule
          in
          let pr = Interp.Sim.make_probe ~depth ~ids in
          let pc = Interp.Sim.make_probe ~depth ~ids in
          let reference = Interp.Sim.run_reference ~config ~probe:pr program in
          let compiled = Interp.Sim.run ~config ~probe:pc program in
          Alcotest.(check bool)
            (entry.Benchsuite.Reproducers.name ^ ": observables") true
            (observe reference = observe compiled);
          Alcotest.(check int)
            (entry.Benchsuite.Reproducers.name ^ ": recorded depth")
            (Interp.Sim.probe_recorded pr)
            (Interp.Sim.probe_recorded pc);
          for k = 0 to Interp.Sim.probe_recorded pr - 1 do
            Alcotest.(check int)
              (Printf.sprintf "%s: fingerprint %d"
                 entry.Benchsuite.Reproducers.name k)
              (Interp.Sim.probe_fingerprint pr k)
              (Interp.Sim.probe_fingerprint pc k)
          done)
        [ `Round_robin; `Random 42; `Scripted [ 2; 0; 1; 2; 1; 0; 2 ] ])
    Benchsuite.Reproducers.all

(* ------------------------------------------------------------------ *)
(* Properties over the random program generators                        *)
(* ------------------------------------------------------------------ *)

(* Realize the final shared-variable values as observables: printing
   x0..x3 at the end of main folds the final environment into the trace,
   so trace equality also checks final stores. *)
let with_final_prints (p : Ast.program) =
  let prints =
    List.map (fun v -> mk (Ast.Print (Ast.Var v))) Test_qcheck.shared_vars
  in
  Builder.number_lines
    {
      Ast.funcs =
        List.map
          (fun (f : Ast.func) ->
            if f.Ast.fname = "main" then
              { f with Ast.body = f.Ast.body @ prints }
            else f)
          p.Ast.funcs;
    }

let properties =
  let open QCheck in
  [
    Test.make
      ~name:"compiled = reference on deterministic programs (incl. final env)"
      ~count:40 Test_qcheck.arb_program (fun p ->
        let p = with_final_prints p in
        List.for_all
          (fun schedule ->
            let config = config schedule in
            observe (Interp.Sim.run_reference ~config p)
            = observe (Interp.Sim.run ~config p))
          schedules);
    Test.make
      ~name:"compiled = reference on racy programs (outcome, trace, fingerprints)"
      ~count:25 Test_qcheck.arb_racy_program (fun p ->
        let ids = Interp.Sim.stmt_ids p in
        let depth = 10 in
        List.for_all
          (fun schedule ->
            let config = config schedule in
            let pr = Interp.Sim.make_probe ~depth ~ids in
            let pc = Interp.Sim.make_probe ~depth ~ids in
            let reference = Interp.Sim.run_reference ~config ~probe:pr p in
            let compiled = Interp.Sim.run ~config ~probe:pc p in
            observe reference = observe compiled
            && Interp.Sim.probe_recorded pr = Interp.Sim.probe_recorded pc
            && List.for_all
                 (fun k ->
                   Interp.Sim.probe_fingerprint pr k
                   = Interp.Sim.probe_fingerprint pc k)
                 (List.init (Interp.Sim.probe_recorded pr) Fun.id))
          schedules);
    Test.make
      ~name:"compiled exploration = reference exploration (racy programs)"
      ~count:10 Test_qcheck.arb_racy_program (fun p ->
        let config =
          {
            (config `Round_robin) with
            Interp.Sim.record_trace = false;
            max_steps = 50_000;
          }
        in
        let branch_depth = 4 and budget = 20_000 in
        String.equal
          (Interp.Explore.summary_to_string
             (Interp.Explore.outcomes ~branch_depth ~budget ~interp:`Compiled
                ~config p))
          (Interp.Explore.summary_to_string
             (Interp.Explore.outcomes ~branch_depth ~budget ~interp:`Reference
                ~config p)));
  ]

let suite =
  [
    ( "compile.scoping",
      [
        Alcotest.test_case "shadowing in nested blocks" `Quick test_shadowing;
        Alcotest.test_case "privatized loop variable and reduction" `Quick
          test_loop_privatization;
        Alcotest.test_case "function parameters, recursion, return" `Quick
          test_function_params;
        Alcotest.test_case "scripted-choice indexing is unchanged" `Quick
          test_scripted_indexing;
      ] );
    ( "compile.fingerprints",
      [
        Alcotest.test_case "reproducer catalogue parity" `Quick
          test_reproducer_fingerprints;
      ] );
    ("compile.equivalence", List.map QCheck_alcotest.to_alcotest properties);
  ]
