(** Tests for the dynamic partial-order reduction explorer: the {!Dpor}
    dependence/happens-before primitives on hand-built steps, and
    {!Explore.outcomes_dpor} against the brute-force reference on the
    shared reproducers and the deep [racy_ring] example. *)

open Interp

let parse src = Minilang.Parser.parse_string ~file:"test" src

let config ?(nranks = 2) ?(threads = 2) () =
  {
    Sim.nranks;
    default_nthreads = threads;
    schedule = `Round_robin;
    max_steps = 200_000;
    entry = "main";
    record_trace = false;
    thread_level = Mpisim.Thread_level.Multiple;
  }

let classes (s : Explore.summary) =
  List.sort compare (List.map fst s.Explore.witnesses)

let subset a b = List.for_all (fun c -> List.mem c b) a

(* A step_view as the recorder would produce it: [clock] is the task's
   vector clock at the beginning of the step, [epoch] its own component
   after the tick. *)
let step ?(runnable = [| 0; 1 |]) ~task ~clock ~epoch events =
  {
    Dpor.v_task = task;
    v_runnable = runnable;
    v_events = Array.of_list events;
    v_clock = Array.of_list clock;
    v_epoch = epoch;
  }

let conflict_tests =
  [
    Alcotest.test_case "footprint conflicts" `Quick (fun () ->
        let chk name expect a b =
          Alcotest.(check bool) name expect (Dpor.conflicts a b)
        in
        let w fid slot = Dpor.ESlot { fid; slot; write = true } in
        let r fid slot = Dpor.ESlot { fid; slot; write = false } in
        chk "write/write same loc" true (w 1 0) (w 1 0);
        chk "read/write same loc" true (r 1 0) (w 1 0);
        chk "read/read same loc" false (r 1 0) (r 1 0);
        chk "write/write distinct slot" false (w 1 0) (w 1 1);
        chk "write/write distinct frame" false (w 1 0) (w 2 0);
        chk "same lock" true
          (Dpor.ELock { rank = 0; name = "l" })
          (Dpor.ELock { rank = 0; name = "l" });
        chk "same-name lock on another rank" false
          (Dpor.ELock { rank = 0; name = "l" })
          (Dpor.ELock { rank = 1; name = "l" });
        chk "same single arbitration" true
          (Dpor.ESingle { forker = 2; uid = 7; instance = 0 })
          (Dpor.ESingle { forker = 2; uid = 7; instance = 0 });
        chk "other instance of the single" false
          (Dpor.ESingle { forker = 2; uid = 7; instance = 0 })
          (Dpor.ESingle { forker = 2; uid = 7; instance = 1 });
        chk "same-rank collective arrivals" true
          (Dpor.EColl { rank = 1 })
          (Dpor.EColl { rank = 1 });
        chk "cross-rank collective arrivals" false
          (Dpor.EColl { rank = 0 })
          (Dpor.EColl { rank = 1 });
        chk "same inbox" true
          (Dpor.EMail { dst = 1 })
          (Dpor.EMail { dst = 1 });
        chk "same counter region" true
          (Dpor.ECounter { rank = 0; region = 3 })
          (Dpor.ECounter { rank = 0; region = 3 });
        chk "spawns always conflict" true Dpor.ESpawn Dpor.ESpawn;
        chk "slot vs lock" false (w 1 0) (Dpor.ELock { rank = 0; name = "l" }));
    Alcotest.test_case "step footprints conflict through any pair" `Quick
      (fun () ->
        let w = Dpor.ESlot { fid = 1; slot = 0; write = true } in
        let r = Dpor.ESlot { fid = 9; slot = 4; write = false } in
        Alcotest.(check bool) "disjoint" false
          (Dpor.steps_conflict [| r |] [| r |]);
        Alcotest.(check bool) "one conflicting pair suffices" true
          (Dpor.steps_conflict [| r; w |] [| w; r |]);
        Alcotest.(check bool) "empty footprint commutes" false
          (Dpor.steps_conflict [||] [| w |]));
  ]

let ordered_tests =
  [
    Alcotest.test_case "racing pair: no clock path between the steps" `Quick
      (fun () ->
        (* Task 0 writes at epoch 3; task 1's begin-of-step clock never
           saw it: the pair is dependent yet unordered — a backtrack
           point. *)
        let w = Dpor.ESlot { fid = 1; slot = 0; write = true } in
        let steps =
          [|
            step ~task:0 ~clock:[ 3; 0 ] ~epoch:3 [ w ];
            step ~task:1 ~clock:[ 2; 5 ] ~epoch:5 [ w ];
          |]
        in
        Alcotest.(check bool) "dependent" true
          (Dpor.steps_conflict steps.(0).Dpor.v_events
             steps.(1).Dpor.v_events);
        Alcotest.(check bool) "unordered" false (Dpor.ordered steps 0 1));
    Alcotest.test_case "ordered pair: the clock carries the epoch" `Quick
      (fun () ->
        (* Task 1 begins its step having already observed task 0's write
           (clock component 3 >= epoch 3): ordered, no backtrack. *)
        let w = Dpor.ESlot { fid = 1; slot = 0; write = true } in
        let steps =
          [|
            step ~task:0 ~clock:[ 3; 0 ] ~epoch:3 [ w ];
            step ~task:1 ~clock:[ 3; 5 ] ~epoch:5 [ w ];
          |]
        in
        Alcotest.(check bool) "ordered" true (Dpor.ordered steps 0 1));
    Alcotest.test_case "program order: same task is always ordered" `Quick
      (fun () ->
        let steps =
          [|
            step ~task:2 ~clock:[ 0; 0; 1 ] ~epoch:1 [];
            step ~task:2 ~clock:[ 0; 0; 2 ] ~epoch:2 [];
          |]
        in
        Alcotest.(check bool) "ordered" true (Dpor.ordered steps 0 1));
  ]

let run_dpor ?(branch_depth = 8) ?(budget = 200_000) ?(jobs = 1) program =
  Explore.outcomes_dpor ~branch_depth ~budget ~jobs ~config:(config ())
    program

let check_invariant name (s : Explore.summary) =
  Alcotest.(check int)
    (name ^ ": runs = replays + pruned")
    s.Explore.runs
    (s.Explore.replays + s.Explore.pruned);
  match s.Explore.dpor with
  | None -> Alcotest.fail (name ^ ": DPOR summary lacks dpor stats")
  | Some d ->
      Alcotest.(check int)
        (name ^ ": representatives = replays - fp hits")
        d.Explore.representatives
        (s.Explore.replays - d.Explore.fp_hits);
      Alcotest.(check int)
        (name ^ ": pruned counts the sleep-set skips")
        s.Explore.pruned d.Explore.sleep_skips

let engine_tests =
  [
    Alcotest.test_case "covers the reference classes on every reproducer"
      `Slow (fun () ->
        List.iter
          (fun (e : Benchsuite.Reproducers.entry) ->
            let program = Benchsuite.Reproducers.program e in
            let name = e.Benchsuite.Reproducers.name in
            let reference =
              Explore.outcomes_reference ~branch_depth:8 ~budget:200_000
                ~config:(config ()) program
            in
            let dpor = run_dpor program in
            Alcotest.(check bool)
              (name ^ ": reference classes covered")
              true
              (subset (classes reference) (classes dpor));
            check_invariant name dpor)
          Benchsuite.Reproducers.all);
    Alcotest.test_case "witness scripts replay to their class" `Quick
      (fun () ->
        let dpor = run_dpor (Benchsuite.Reproducers.load "racy-singles") in
        Alcotest.(check bool) "found several classes" true
          (List.length dpor.Explore.witnesses >= 2);
        List.iter
          (fun (name, script) ->
            let r =
              Explore.replay ~config:(config ())
                (Benchsuite.Reproducers.load "racy-singles")
                script
            in
            Alcotest.(check string) ("witness for " ^ name) name
              (Explore.class_name r.Sim.outcome))
          dpor.Explore.witnesses);
    Alcotest.test_case "summary is deterministic in the number of domains"
      `Quick (fun () ->
        let program = Benchsuite.Reproducers.load "racy-singles" in
        Alcotest.(check string)
          "jobs:4 = jobs:1"
          (Explore.summary_to_string (run_dpor ~jobs:1 program))
          (Explore.summary_to_string (run_dpor ~jobs:4 program)));
    Alcotest.test_case "backtrack accounting on a racing pair" `Quick
      (fun () ->
        (* Two threads write the same shared slot with no ordering: DPOR
           must schedule at least one backtrack and replay both orders. *)
        let s =
          run_dpor
            (parse
               {|func main() { var x = 0;
                  pragma omp parallel num_threads(2) { x = x + 1; }
                  MPI_Barrier(); }|})
        in
        (match s.Explore.dpor with
        | Some d ->
            Alcotest.(check bool) "has backtrack points" true
              (d.Explore.backtrack_points > 0)
        | None -> Alcotest.fail "missing dpor stats");
        Alcotest.(check bool) "more than one representative" true
          (s.Explore.replays > 1));
    Alcotest.test_case "independent steps need a single representative"
      `Quick (fun () ->
        (* Per-thread private work only: every interleaving is one
           Mazurkiewicz trace (modulo the spawn ordering), so DPOR stays
           near one replay where BFS enumerates the whole lattice. *)
        let program =
          parse
            {|func main() {
               pragma omp parallel num_threads(2) {
                 var local = 0;
                 pragma omp for i = 0 to 6 nowait { local = local + i; }
               }
             }|}
        in
        let dpor = run_dpor ~branch_depth:12 program in
        let bfs =
          Explore.outcomes ~branch_depth:12 ~budget:200_000
            ~config:(config ()) program
        in
        Alcotest.(check (list string)) "same classes" (classes bfs)
          (classes dpor);
        Alcotest.(check bool)
          (Printf.sprintf "far fewer replays (dpor %d vs bfs %d)"
             dpor.Explore.replays bfs.Explore.replays)
          true
          (dpor.Explore.replays * 4 <= bfs.Explore.replays));
  ]

let ring_tests =
  [
    Alcotest.test_case "racy_ring: completes and beats BFS 10x" `Slow
      (fun () ->
        let program =
          Minilang.Parser.parse_file "../examples/programs/racy_ring.hml"
        in
        (* The benchsuite carries a copy of the source: keep the two in
           sync (same classes, same replay counts). *)
        let entry = Benchsuite.Reproducers.load "racy-ring" in
        Alcotest.(check string) "reproducer copy in sync"
          (Explore.summary_to_string
             (Explore.outcomes_dpor ~branch_depth:8 ~budget:500
                ~config:(config ()) program))
          (Explore.summary_to_string
             (Explore.outcomes_dpor ~branch_depth:8 ~budget:500
                ~config:(config ()) entry));
        let budget = 2000 in
        let dpor =
          Explore.outcomes_dpor ~branch_depth:16 ~budget ~config:(config ())
            program
        in
        let bfs =
          Explore.outcomes ~branch_depth:16 ~budget ~config:(config ())
            program
        in
        Alcotest.(check bool) "dpor finds the abort" true
          (Explore.reaches dpor "aborted");
        Alcotest.(check bool) "dpor finds the clean completion" true
          (Explore.reaches dpor "finished");
        Alcotest.(check bool) "bfs classes covered" true
          (subset (classes bfs) (classes dpor));
        check_invariant "racy_ring" dpor;
        Alcotest.(check bool)
          (Printf.sprintf "10x fewer replays (dpor %d vs bfs %d)"
             dpor.Explore.replays bfs.Explore.replays)
          true
          (dpor.Explore.replays * 10 <= bfs.Explore.replays));
  ]

let suite =
  [
    ("dpor.conflicts", conflict_tests);
    ("dpor.ordered", ordered_tests);
    ("dpor.engine", engine_tests);
    ("dpor.racy-ring", ring_tests);
  ]
