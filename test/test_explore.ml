(** Tests for the bounded schedule-space explorer. *)

open Interp

let parse src = Minilang.Parser.parse_string ~file:"test" src

let config ?(nranks = 2) ?(threads = 2) () =
  {
    Sim.nranks;
    default_nthreads = threads;
    schedule = `Round_robin;
    max_steps = 200_000;
    entry = "main";
    record_trace = false;
    thread_level = Mpisim.Thread_level.Multiple;
  }

let racy_src =
  (* Instrumented by hand with a concurrency counter: aborts only when the
     two singles actually overlap. *)
  {|func main() {
     pragma omp parallel num_threads(2) {
       pragma omp single nowait { __count_enter(1); MPI_Barrier(); __count_exit(1); }
       pragma omp single { __count_enter(1); MPI_Allgather(1); __count_exit(1); }
     }
   }|}

let tests =
  [
    Alcotest.test_case "deterministic program yields a single class" `Quick
      (fun () ->
        let s =
          Explore.outcomes ~branch_depth:6 ~budget:300 ~config:(config ())
            (parse
               {|func main() { var x = 0;
                  pragma omp parallel num_threads(2) {
                    pragma omp critical { x = x + 1; }
                  }
                  MPI_Barrier(); }|})
        in
        Alcotest.(check int) "all finished" s.Explore.runs s.Explore.finished;
        Alcotest.(check bool) "several schedules" true (s.Explore.runs > 10));
    Alcotest.test_case "explorer finds both fates of the singles race" `Quick
      (fun () ->
        let s =
          Explore.outcomes ~branch_depth:10 ~budget:3000 ~config:(config ())
            (parse racy_src)
        in
        Alcotest.(check bool) "some schedule finishes" true
          (Explore.reaches s "finished" || Explore.reaches s "fault");
        Alcotest.(check bool) "some schedule aborts at the counter" true
          (Explore.reaches s "aborted"));
    Alcotest.test_case "witness scripts replay deterministically" `Quick
      (fun () ->
        let s =
          Explore.outcomes ~branch_depth:10 ~budget:3000 ~config:(config ())
            (parse racy_src)
        in
        List.iter
          (fun (name, script) ->
            let result = Explore.replay ~config:(config ()) (parse racy_src) script in
            Alcotest.(check string) (name ^ " replays")
              name
              (Explore.class_name result.Sim.outcome))
          s.Explore.witnesses);
    Alcotest.test_case "divergent barrier: every schedule deadlocks" `Quick
      (fun () ->
        let s =
          Explore.outcomes ~branch_depth:6 ~budget:300 ~config:(config ())
            (parse "func main() { if (rank() == 0) { MPI_Barrier(); } }")
        in
        Alcotest.(check int) "all deadlock" s.Explore.runs s.Explore.deadlocked);
    Alcotest.test_case "budget bounds the replays" `Quick (fun () ->
        let s =
          Explore.outcomes ~branch_depth:20 ~budget:50 ~config:(config ())
            (parse racy_src)
        in
        Alcotest.(check bool) "at most budget replays" true
          (s.Explore.replays <= 50);
        Alcotest.(check bool) "runs count everything represented" true
          (s.Explore.runs >= s.Explore.replays));
    Alcotest.test_case "pruned engine matches the reference on the reproducers"
      `Quick (fun () ->
        List.iter
          (fun (e : Benchsuite.Reproducers.entry) ->
            let program = Benchsuite.Reproducers.program e in
            let reference =
              Explore.outcomes_reference ~branch_depth:8 ~budget:100_000
                ~config:(config ()) program
            in
            let pruned =
              Explore.outcomes ~branch_depth:8 ~budget:100_000
                ~config:(config ()) program
            in
            let counts (s : Explore.summary) =
              ( s.Explore.finished,
                s.Explore.aborted,
                s.Explore.faulted,
                s.Explore.deadlocked,
                s.Explore.step_limited )
            in
            let classes (s : Explore.summary) =
              List.sort compare (List.map fst s.Explore.witnesses)
            in
            Alcotest.(check (list string))
              (e.Benchsuite.Reproducers.name ^ ": same classes")
              (classes reference) (classes pruned);
            Alcotest.(check bool)
              (e.Benchsuite.Reproducers.name ^ ": same counts")
              true
              (counts reference = counts pruned))
          Benchsuite.Reproducers.all);
    Alcotest.test_case "pruning replays far fewer schedules than it represents"
      `Quick (fun () ->
        let s =
          Explore.outcomes ~branch_depth:10 ~budget:100_000
            ~config:(config ~nranks:3 ())
            (Benchsuite.Reproducers.load "deadlock-barrier")
        in
        Alcotest.(check bool) "pruned some" true (s.Explore.pruned > 0);
        Alcotest.(check int) "accounting holds" s.Explore.runs
          (s.Explore.replays + s.Explore.pruned));
    Alcotest.test_case "jobs:4 summary is byte-identical to jobs:1" `Quick
      (fun () ->
        let run jobs =
          Explore.summary_to_string
            (Explore.outcomes ~branch_depth:10 ~budget:3000 ~jobs
               ~config:(config ()) (parse racy_src))
        in
        Alcotest.(check string) "identical" (run 1) (run 4));
    Alcotest.test_case "witnesses replay after pruning" `Quick (fun () ->
        let program = Benchsuite.Reproducers.load "sections-collectives" in
        let s =
          Explore.outcomes ~branch_depth:8 ~budget:100_000 ~config:(config ())
            program
        in
        List.iter
          (fun (name, script) ->
            let result = Explore.replay ~config:(config ()) program script in
            Alcotest.(check string) (name ^ " replays") name
              (Explore.class_name result.Sim.outcome))
          s.Explore.witnesses);
  ]

let suite = [ ("explore.schedules", tests) ]
