(** Tests for the differential fuzzing farm ([lib/farm]).

    Property: every decision trace — arbitrary integers, arbitrary
    length, with or without an injected fault — decodes to a program
    that validates and whose pretty-printed text parses back to the
    identical AST (the generator is total over the valid space, which is
    what lets the delta debugger shrink traces freely).

    Pipeline: verdicts are deterministic across domain counts, the farm
    agrees with the CLI-equivalent serial baseline, the manifest is
    byte-stable, and a deliberately weakened checker is caught and
    minimized to a small reproducer. *)

let sim_small =
  { Farm.Oracle.default_sim with Farm.Oracle.seeds = [ 1; 2 ] }

let spec_small =
  {
    Farm.Pipeline.default_spec with
    Farm.Pipeline.families = 8;
    variants = 4;
    sim = sim_small;
  }

let nonblank_lines text =
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' text))

(* ------------------------------------------------------------------ *)
(* Generator properties                                                *)
(* ------------------------------------------------------------------ *)

let gen_trace = QCheck.Gen.(array_size (int_bound 80) (int_range (-3) 40))

let gen_case =
  QCheck.Gen.(
    let* trace = gen_trace in
    let* inject =
      oneof
        [
          return None;
          (let* bug = oneofl Benchsuite.Injector.all in
           let* site = int_bound 100 in
           return (Some (bug, site)));
        ]
    in
    return { Farm.Gen.trace; inject })

let case_print (c : Farm.Gen.case) = Farm.Gen.case_id c

let properties =
  [
    QCheck.Test.make ~count:300 ~name:"every case decodes to a valid program"
      (QCheck.make ~print:case_print gen_case)
      (fun case ->
        let p = Farm.Gen.program case in
        Minilang.Validate.is_valid (Minilang.Validate.check_program p));
    QCheck.Test.make ~count:300
      ~name:"pretty -> parse round-trips to the identical AST"
      (QCheck.make ~print:case_print gen_case)
      (fun case ->
        let p = Farm.Gen.program case in
        let text = Minilang.Pretty.program_to_string p in
        let p' = Minilang.Parser.parse_string ~file:"<farm>" text in
        Minilang.Ast.equal_program p p');
    QCheck.Test.make ~count:100
      ~name:"recorded traces replay to the same program"
      QCheck.(make ~print:string_of_int Gen.small_nat)
      (fun seed ->
        let rng = Random.State.make [| 0xfeed; seed |] in
        let trace = Farm.Gen.random_trace rng in
        let p = Farm.Gen.skeleton trace in
        Minilang.Validate.is_valid (Minilang.Validate.check_program p)
        && Minilang.Ast.equal_program p (Farm.Gen.skeleton trace));
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline tests                                                      *)
(* ------------------------------------------------------------------ *)

let obs_list (r : Farm.Pipeline.result) =
  Array.to_list
    (Array.map (fun (v : Farm.Pipeline.verdict) -> v.Farm.Pipeline.obs)
       r.Farm.Pipeline.verdicts)

let tests =
  [
    Alcotest.test_case "verdicts are domain-count invariant" `Quick (fun () ->
        let r1 = Farm.Pipeline.run ~jobs:1 ~shards:4 ~batch:4 spec_small in
        let r2 = Farm.Pipeline.run ~jobs:2 ~shards:4 ~batch:4 spec_small in
        let r3 = Farm.Pipeline.run ~jobs:1 ~shards:2 ~batch:7 spec_small in
        Alcotest.(check bool) "jobs 1 = jobs 2" true
          (obs_list r1 = obs_list r2);
        Alcotest.(check bool) "shard/batch invariant" true
          (obs_list r1 = obs_list r3));
    Alcotest.test_case "farm agrees with the serial baseline" `Quick
      (fun () ->
        let farm = Farm.Pipeline.run ~jobs:1 spec_small in
        let serial = Farm.Pipeline.run_serial spec_small in
        List.iter2
          (fun f s ->
            Alcotest.(check bool) "obs agree" true
              (Farm.Oracle.obs_agree f s))
          (obs_list farm) (obs_list serial);
        Alcotest.(check int) "clean corpus, no violations" 0
          (List.length farm.Farm.Pipeline.violations));
    Alcotest.test_case "manifest is byte-stable" `Quick (fun () ->
        let m () =
          Farm.Pipeline.manifest ~shards:8 spec_small
            (Farm.Pipeline.fingerprinted (Farm.Pipeline.corpus spec_small))
        in
        let a = m () and b = m () in
        Alcotest.(check string) "identical" a b;
        Alcotest.(check int) "one line per entry + header"
          (spec_small.Farm.Pipeline.families
           * spec_small.Farm.Pipeline.variants
          + 1)
          (nonblank_lines a));
    Alcotest.test_case "work queue: take own shards, then steal" `Quick
      (fun () ->
        let q =
          Serve.Pool.Workq.create
            [| [| [| 0; 1 |]; [| 2 |] |]; [| [| 3 |] |]; [||] |]
        in
        Alcotest.(check int) "shards" 3 (Serve.Pool.Workq.shards q);
        (match Serve.Pool.Workq.take q ~shard:0 with
        | Some b -> Alcotest.(check (array int)) "first batch" [| 0; 1 |] b
        | None -> Alcotest.fail "expected a batch");
        (match Serve.Pool.Workq.steal q ~preferred:2 with
        | Some (shard, b) ->
            (* Shard 2 is empty; the scan wraps to the next non-empty. *)
            Alcotest.(check int) "stolen from" 0 shard;
            Alcotest.(check (array int)) "stolen batch" [| 2 |] b
        | None -> Alcotest.fail "expected a steal");
        (match Serve.Pool.Workq.steal q ~preferred:0 with
        | Some (shard, _) -> Alcotest.(check int) "last batch" 1 shard
        | None -> Alcotest.fail "expected a steal");
        Alcotest.(check bool) "drained" true
          (Serve.Pool.Workq.steal q ~preferred:0 = None
          && Serve.Pool.Workq.take q ~shard:0 = None));
    Alcotest.test_case "timings cover every pipeline stage" `Quick (fun () ->
        let tm = Parcoach.Timings.create () in
        let (_ : Farm.Pipeline.result) =
          Farm.Pipeline.run ~timings:tm ~jobs:1 spec_small
        in
        let phases = List.map fst (Parcoach.Timings.entries tm) in
        List.iter
          (fun phase ->
            Alcotest.(check bool) (phase ^ " recorded") true
              (List.mem phase phases))
          [
            "generate"; "fingerprint"; "validate"; "hash"; "compile";
            "simulate";
          ]);
    Alcotest.test_case "weakened checker is caught and minimized" `Quick
      (fun () ->
        let spec =
          {
            spec_small with
            Farm.Pipeline.families = 6;
            variants = 6;
            handicap = Some Farm.Oracle.Blind_mismatch;
          }
        in
        let entries =
          Farm.Pipeline.fingerprinted (Farm.Pipeline.corpus spec)
        in
        let result = Farm.Pipeline.run_entries ~jobs:1 spec entries in
        Alcotest.(check bool) "drill violations found" true
          (result.Farm.Pipeline.violations <> []);
        let repros =
          Farm.Pipeline.minimized_reproducers ~limit:1 spec result entries
        in
        List.iter
          (fun ( (_ : Farm.Pipeline.entry),
                 (v : Farm.Oracle.violation),
                 case,
                 program ) ->
            Alcotest.(check bool) "still violates" true
              (Farm.Pipeline.violates ~handicap:Farm.Oracle.Blind_mismatch
                 ~sim:spec.Farm.Pipeline.sim ~vkind:v.Farm.Oracle.vkind case);
            Alcotest.(check bool) "reproducer fits in 30 lines" true
              (nonblank_lines (Minilang.Pretty.program_to_string program)
              <= 30))
          repros);
  ]

let suite =
  [
    ("farm.gen", List.map QCheck_alcotest.to_alcotest properties);
    ("farm.pipeline", tests);
  ]
