(** Tests for the MUST-style tree-overlay trace checker. *)

open Mustlike

let ev ?(op = None) ?(root = None) ?(payload = 0) kind site : Mpisim.Engine.trace_event =
  { signature = (kind, op, root); payload; event_site = site }

let barrier site = ev Mpisim.Coll.Barrier site

let allreduce site = ev ~op:(Some Mpisim.Op.Sum) Mpisim.Coll.Allreduce site

let tree_tests =
  [
    Alcotest.test_case "binary tree over 8 ranks has depth 3" `Quick (fun () ->
        let t = Overlay.build_tree ~fanout:2 ~nranks:8 in
        Alcotest.(check int) "depth" 3 (Overlay.depth t);
        Alcotest.(check int) "fan-in" 2 (Overlay.max_fan_in t));
    Alcotest.test_case "centralized tree has depth 1, fan-in nranks" `Quick
      (fun () ->
        let t = Overlay.build_tree ~fanout:16 ~nranks:16 in
        Alcotest.(check int) "depth" 1 (Overlay.depth t);
        Alcotest.(check int) "fan-in" 16 (Overlay.max_fan_in t));
    Alcotest.test_case "single rank tree" `Quick (fun () ->
        let t = Overlay.build_tree ~fanout:2 ~nranks:1 in
        Alcotest.(check int) "depth" 1 (Overlay.depth t));
    Alcotest.test_case "invalid fanout rejected" `Quick (fun () ->
        match Overlay.build_tree ~fanout:1 ~nranks:4 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let check_tests =
  [
    Alcotest.test_case "identical traces match" `Quick (fun () ->
        let trace = [ barrier "a"; allreduce "b"; barrier "c" ] in
        let r = Overlay.check [| trace; trace; trace; trace |] in
        Alcotest.(check bool) "match" true (Overlay.is_match r);
        (match r.Overlay.verdict with
        | `Match n -> Alcotest.(check int) "rounds" 3 n
        | `Divergence _ -> Alcotest.fail "unexpected divergence"));
    Alcotest.test_case "kind mismatch is localized" `Quick (fun () ->
        let t1 = [ barrier "a"; allreduce "b" ] in
        let t2 = [ barrier "a"; barrier "bad" ] in
        let r = Overlay.check [| t1; t1; t2; t1 |] in
        match r.Overlay.verdict with
        | `Divergence d ->
            Alcotest.(check int) "position" 1 d.Overlay.position;
            Alcotest.(check bool) "rank 2 in a conflicting group" true
              (List.exists (fun (_, ranks) -> List.mem 2 ranks) d.Overlay.groups)
        | `Match _ -> Alcotest.fail "expected divergence");
    Alcotest.test_case "shorter stream is a divergence" `Quick (fun () ->
        let t1 = [ barrier "a"; barrier "b" ] in
        let t2 = [ barrier "a" ] in
        let r = Overlay.check [| t1; t2 |] in
        match r.Overlay.verdict with
        | `Divergence d ->
            Alcotest.(check int) "position" 1 d.Overlay.position;
            Alcotest.(check bool) "no-event group present" true
              (List.mem_assoc "<no event>" d.Overlay.groups)
        | `Match _ -> Alcotest.fail "expected divergence");
    Alcotest.test_case "operator mismatch detected" `Quick (fun () ->
        let t1 = [ ev ~op:(Some Mpisim.Op.Sum) Mpisim.Coll.Allreduce "x" ] in
        let t2 = [ ev ~op:(Some Mpisim.Op.Max) Mpisim.Coll.Allreduce "x" ] in
        Alcotest.(check bool) "divergence" false
          (Overlay.is_match (Overlay.check [| t1; t2 |])));
    Alcotest.test_case "root mismatch detected" `Quick (fun () ->
        let t1 = [ ev ~root:(Some 0) Mpisim.Coll.Bcast "x" ] in
        let t2 = [ ev ~root:(Some 1) Mpisim.Coll.Bcast "x" ] in
        Alcotest.(check bool) "divergence" false
          (Overlay.is_match (Overlay.check [| t1; t2 |])));
    Alcotest.test_case "payload differences do not matter" `Quick (fun () ->
        let t1 = [ ev ~payload:1 Mpisim.Coll.Barrier "x" ] in
        let t2 = [ ev ~payload:9 Mpisim.Coll.Barrier "x" ] in
        Alcotest.(check bool) "match" true
          (Overlay.is_match (Overlay.check [| t1; t2 |])));
    Alcotest.test_case "message count: one per tree edge per round" `Quick
      (fun () ->
        (* 3 ranks, fanout 2: layer 0 sends 3 messages (2+1), layer 1 sends
           2, so 5 per round. *)
        let trace = [ barrier "a"; barrier "b" ] in
        let r = Overlay.check ~fanout:2 (Array.make 3 trace) in
        Alcotest.(check int) "messages" 10 r.Overlay.messages);
    Alcotest.test_case "overlay metrics: tree spreads the load" `Quick
      (fun () ->
        let trace = [ barrier "a" ] in
        let traces = Array.make 16 trace in
        let tree = Overlay.check ~fanout:2 traces in
        let central = Overlay.check ~fanout:16 traces in
        Alcotest.(check bool) "tree deeper" true
          (tree.Overlay.tree_depth > central.Overlay.tree_depth);
        Alcotest.(check bool) "central busier" true
          (central.Overlay.tree_max_fan_in > tree.Overlay.tree_max_fan_in));
  ]

let engine_tests =
  [
    Alcotest.test_case "engine traces of a clean run match" `Quick (fun () ->
        let src =
          {|func main() { MPI_Barrier(); var x = 0; x = MPI_Allreduce(1, sum);
             MPI_Bcast(x, 0); }|}
        in
        let p = Minilang.Parser.parse_string ~file:"t" src in
        let result =
          Interp.Sim.run
            ~config:{ Interp.Sim.default_config with nranks = 4 }
            p
        in
        let r = Overlay.check_engine result.Interp.Sim.engine in
        Alcotest.(check bool) "match" true (Overlay.is_match r);
        (match r.Overlay.verdict with
        | `Match n -> Alcotest.(check int) "three rounds" 3 n
        | `Divergence _ -> Alcotest.fail "unexpected divergence"));
    Alcotest.test_case "engine traces of a mismatching run diverge" `Quick
      (fun () ->
        let src =
          {|func main() { if (rank() == 0) { MPI_Barrier(); } else { MPI_Allgather(1); } }|}
        in
        let p = Minilang.Parser.parse_string ~file:"t" src in
        let result =
          Interp.Sim.run
            ~config:{ Interp.Sim.default_config with nranks = 3 }
            p
        in
        let r = Overlay.check_engine result.Interp.Sim.engine in
        Alcotest.(check bool) "divergence found post mortem" false
          (Overlay.is_match r));
    Alcotest.test_case "CC checks are excluded from traces" `Quick (fun () ->
        let src =
          {|func main() { __cc_next(1, "MPI_Barrier"); MPI_Barrier(); __cc_return(); }|}
        in
        let p = Minilang.Parser.parse_string ~file:"t" src in
        let result =
          Interp.Sim.run
            ~config:{ Interp.Sim.default_config with nranks = 2 }
            p
        in
        Alcotest.(check int) "one real event" 1
          (List.length (Mpisim.Engine.rank_trace result.Interp.Sim.engine 0)));
  ]

let qcheck_tests =
  let open QCheck in
  let gen_trace =
    Gen.list_size (Gen.int_bound 6)
      (Gen.oneofl
         [
           barrier "s";
           allreduce "s";
           ev ~root:(Some 0) Mpisim.Coll.Bcast "s";
           ev ~op:(Some Mpisim.Op.Max) Mpisim.Coll.Reduce ~root:(Some 1) "s";
         ])
  in
  let arb =
    make
      ~print:(fun (traces, fanout) ->
        Printf.sprintf "%d traces, fanout %d" (Array.length traces) fanout)
      Gen.(
        map2
          (fun traces fanout -> (Array.of_list traces, fanout))
          (list_size (int_range 1 9) gen_trace)
          (int_range 2 8))
  in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"verdict is independent of the fanout" ~count:200 arb
         (fun (traces, fanout) ->
           Overlay.is_match (Overlay.check ~fanout traces)
           = Overlay.is_match (Overlay.check ~fanout:2 traces)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"equal traces always match" ~count:200
         (make Gen.(pair gen_trace (int_range 1 8)))
         (fun (trace, n) ->
           Overlay.is_match (Overlay.check (Array.make n trace))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"divergence position is within stream bounds" ~count:200
         arb
         (fun (traces, fanout) ->
           match (Overlay.check ~fanout traces).Overlay.verdict with
           | `Match _ -> true
           | `Divergence d ->
               let max_len =
                 Array.fold_left (fun acc t -> max acc (List.length t)) 0 traces
               in
               d.Overlay.position >= 0 && d.Overlay.position < max_len));
  ]

let edge_tests =
  [
    Alcotest.test_case "fanout larger than nranks degenerates to one layer"
      `Quick (fun () ->
        let t = Overlay.build_tree ~fanout:8 ~nranks:3 in
        Alcotest.(check int) "depth" 1 (Overlay.depth t);
        Alcotest.(check int) "fan-in" 3 (Overlay.max_fan_in t);
        (* One message per leaf per round. *)
        let trace = [ barrier "a"; barrier "b" ] in
        let r = Overlay.check ~fanout:8 (Array.make 3 trace) in
        Alcotest.(check bool) "match" true (Overlay.is_match r);
        Alcotest.(check int) "messages" 6 r.Overlay.messages);
    Alcotest.test_case "single rank: one-node layer, trivially consistent"
      `Quick (fun () ->
        let t = Overlay.build_tree ~fanout:2 ~nranks:1 in
        Alcotest.(check int) "one layer" 1 (Array.length t.Overlay.layers);
        Alcotest.(check int) "self-rooted" 0 t.Overlay.layers.(0).(0);
        Alcotest.(check int) "fan-in" 1 (Overlay.max_fan_in t);
        let r = Overlay.check ~fanout:2 [| [ barrier "a"; allreduce "b" ] |] in
        (match r.Overlay.verdict with
        | `Match n -> Alcotest.(check int) "two rounds" 2 n
        | `Divergence _ -> Alcotest.fail "single rank cannot diverge");
        let empty = Overlay.check ~fanout:2 [| [] |] in
        match empty.Overlay.verdict with
        | `Match n -> Alcotest.(check int) "zero rounds" 0 n
        | `Divergence _ -> Alcotest.fail "empty stream cannot diverge");
    Alcotest.test_case "early-ended subtree is localized above the leaves"
      `Quick (fun () ->
        (* Ranks 0-3 run two rounds, ranks 4-7 stop after one: every
           layer-0/1 comparison is unanimous, so the "<no event>" group
           only meets the live group at the root (layer 2). *)
        let long = [ barrier "a"; allreduce "b" ] in
        let short = [ barrier "a" ] in
        let traces = Array.init 8 (fun r -> if r < 4 then long else short) in
        let r = Overlay.check ~fanout:2 traces in
        match r.Overlay.verdict with
        | `Divergence d ->
            Alcotest.(check int) "position" 1 d.Overlay.position;
            Alcotest.(check int) "detected at the root layer" 2 d.Overlay.layer;
            Alcotest.(check (list int)) "early ranks grouped" [ 4; 5; 6; 7 ]
              (List.assoc "<no event>" d.Overlay.groups)
        | `Match _ -> Alcotest.fail "expected divergence");
  ]

let suite =
  [
    ("mustlike.tree", tree_tests);
    ("mustlike.check", check_tests);
    ("mustlike.edge", edge_tests);
    ("mustlike.engine", engine_tests);
    ("mustlike.qcheck", qcheck_tests);
  ]
