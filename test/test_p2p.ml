(** Tests for point-to-point messaging: mailbox semantics, interpreter
    integration, and the scoping decision that the PARCOACH analyses
    ignore P2P traffic. *)

open Mpisim

let mailbox_tests =
  [
    Alcotest.test_case "send then receive" `Quick (fun () ->
        let mb = Mailbox.create ~nranks:2 in
        Mailbox.send mb ~src:0 ~dst:1 ~tag:7 ~value:42 ~site:"s";
        (match Mailbox.recv mb ~dst:1 ~src:0 ~tag:7 with
        | Some m -> Alcotest.(check int) "value" 42 m.Mailbox.value
        | None -> Alcotest.fail "expected a message");
        Alcotest.(check int) "consumed" 0 (Mailbox.pending mb 1));
    Alcotest.test_case "receive with no message returns None" `Quick (fun () ->
        let mb = Mailbox.create ~nranks:2 in
        Alcotest.(check bool) "none" true (Mailbox.recv mb ~dst:0 ~src:1 ~tag:0 = None));
    Alcotest.test_case "tags are matched" `Quick (fun () ->
        let mb = Mailbox.create ~nranks:2 in
        Mailbox.send mb ~src:0 ~dst:1 ~tag:1 ~value:11 ~site:"s";
        Alcotest.(check bool) "wrong tag not delivered" true
          (Mailbox.recv mb ~dst:1 ~src:0 ~tag:2 = None);
        Alcotest.(check bool) "right tag delivered" true
          (Mailbox.recv mb ~dst:1 ~src:0 ~tag:1 <> None));
    Alcotest.test_case "per-channel FIFO order" `Quick (fun () ->
        let mb = Mailbox.create ~nranks:2 in
        Mailbox.send mb ~src:0 ~dst:1 ~tag:0 ~value:1 ~site:"a";
        Mailbox.send mb ~src:0 ~dst:1 ~tag:0 ~value:2 ~site:"b";
        let v1 = Option.get (Mailbox.recv mb ~dst:1 ~src:0 ~tag:0) in
        let v2 = Option.get (Mailbox.recv mb ~dst:1 ~src:0 ~tag:0) in
        Alcotest.(check (pair int int)) "order" (1, 2)
          (v1.Mailbox.value, v2.Mailbox.value));
    Alcotest.test_case "any_source takes the oldest matching message" `Quick
      (fun () ->
        let mb = Mailbox.create ~nranks:3 in
        Mailbox.send mb ~src:2 ~dst:0 ~tag:0 ~value:22 ~site:"a";
        Mailbox.send mb ~src:1 ~dst:0 ~tag:0 ~value:11 ~site:"b";
        let m = Option.get (Mailbox.recv mb ~dst:0 ~src:Mailbox.any_source ~tag:0) in
        Alcotest.(check int) "oldest first" 22 m.Mailbox.value;
        Alcotest.(check int) "from rank 2" 2 m.Mailbox.src);
    Alcotest.test_case "selective receive preserves other messages" `Quick
      (fun () ->
        let mb = Mailbox.create ~nranks:3 in
        Mailbox.send mb ~src:1 ~dst:0 ~tag:0 ~value:1 ~site:"a";
        Mailbox.send mb ~src:2 ~dst:0 ~tag:0 ~value:2 ~site:"b";
        ignore (Option.get (Mailbox.recv mb ~dst:0 ~src:2 ~tag:0));
        Alcotest.(check int) "one left" 1 (Mailbox.pending mb 0);
        Alcotest.(check int) "counts" 2 (Mailbox.sent_count mb));
    Alcotest.test_case "bad ranks rejected" `Quick (fun () ->
        let mb = Mailbox.create ~nranks:2 in
        match Mailbox.send mb ~src:0 ~dst:9 ~tag:0 ~value:0 ~site:"s" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "any_source matches only the requested tag" `Quick
      (fun () ->
        (* Three senders interleaved across two tags: the wildcard must
           walk past younger messages of the wrong tag and take the
           oldest one carrying the requested tag. *)
        let mb = Mailbox.create ~nranks:4 in
        Mailbox.send mb ~src:1 ~dst:0 ~tag:9 ~value:19 ~site:"a";
        Mailbox.send mb ~src:2 ~dst:0 ~tag:5 ~value:25 ~site:"b";
        Mailbox.send mb ~src:3 ~dst:0 ~tag:9 ~value:39 ~site:"c";
        Mailbox.send mb ~src:1 ~dst:0 ~tag:5 ~value:15 ~site:"d";
        let m1 =
          Option.get (Mailbox.recv mb ~dst:0 ~src:Mailbox.any_source ~tag:5)
        in
        Alcotest.(check (pair int int)) "oldest tag-5 first" (2, 25)
          (m1.Mailbox.src, m1.Mailbox.value);
        let m2 =
          Option.get (Mailbox.recv mb ~dst:0 ~src:Mailbox.any_source ~tag:5)
        in
        Alcotest.(check (pair int int)) "then the younger tag-5" (1, 15)
          (m2.Mailbox.src, m2.Mailbox.value);
        Alcotest.(check bool) "no tag-5 left" true
          (Mailbox.recv mb ~dst:0 ~src:Mailbox.any_source ~tag:5 = None);
        Alcotest.(check int) "tag-9 messages untouched" 2
          (Mailbox.pending mb 0));
    Alcotest.test_case "wildcard after targeted recv preserves channel FIFO"
      `Quick (fun () ->
        (* A targeted recv racing a wildcard on the same inbox: whichever
           messages the targeted recv skips must still be delivered to
           the wildcard oldest-first, and the targeted recv must not be
           able to reorder a single (src, tag) channel. *)
        let mb = Mailbox.create ~nranks:3 in
        Mailbox.send mb ~src:1 ~dst:0 ~tag:0 ~value:11 ~site:"a";
        Mailbox.send mb ~src:2 ~dst:0 ~tag:0 ~value:21 ~site:"b";
        Mailbox.send mb ~src:1 ~dst:0 ~tag:0 ~value:12 ~site:"c";
        Mailbox.send mb ~src:2 ~dst:0 ~tag:0 ~value:22 ~site:"d";
        (* Targeted recv from rank 2 takes 21 (oldest on the 2→0 channel),
           leaving 11, 12, 22. *)
        let t = Option.get (Mailbox.recv mb ~dst:0 ~src:2 ~tag:0) in
        Alcotest.(check int) "targeted takes channel head" 21 t.Mailbox.value;
        (* The wildcard then drains in arrival order: 11, 12, 22 — per
           channel still FIFO (11 before 12, 21 before 22). *)
        let drain () =
          (Option.get (Mailbox.recv mb ~dst:0 ~src:Mailbox.any_source ~tag:0))
            .Mailbox.value
        in
        let d1 = drain () in
        let d2 = drain () in
        let d3 = drain () in
        Alcotest.(check (list int)) "wildcard drains oldest-first"
          [ 11; 12; 22 ] [ d1; d2; d3 ];
        Alcotest.(check int) "inbox empty" 0 (Mailbox.pending mb 0));
    Alcotest.test_case "wildcard interleaving across three ranks" `Quick
      (fun () ->
        (* Senders 1, 2, 3 alternate; repeated wildcard receives must
           observe global arrival order regardless of source. *)
        let mb = Mailbox.create ~nranks:4 in
        List.iter
          (fun (src, value) ->
            Mailbox.send mb ~src ~dst:0 ~tag:7 ~value ~site:"s")
          [ (3, 30); (1, 10); (2, 20); (1, 11); (3, 31); (2, 21) ];
        let got =
          (* Explicit fold: list literals and [List.init] have
             unspecified element evaluation order. *)
          List.rev
            (List.fold_left
               (fun acc _ ->
                 let m =
                   Option.get
                     (Mailbox.recv mb ~dst:0 ~src:Mailbox.any_source ~tag:7)
                 in
                 (m.Mailbox.src, m.Mailbox.value) :: acc)
               [] [ 0; 1; 2; 3; 4; 5 ])
        in
        Alcotest.(check (list (pair int int)))
          "arrival order"
          [ (3, 30); (1, 10); (2, 20); (1, 11); (3, 31); (2, 21) ]
          got);
  ]

let parse src = Minilang.Parser.parse_string ~file:"test" src

let config ?(nranks = 3) ?(seed = 42) () =
  {
    Interp.Sim.nranks;
    default_nthreads = 2;
    schedule = `Random seed;
    max_steps = 500_000;
    entry = "main";
    record_trace = true;
    thread_level = Mpisim.Thread_level.Multiple;
  }

let rank_prints result rank =
  List.filter_map
    (fun (r, _, v) -> if r = rank then Some v else None)
    (Interp.Sim.trace result)

let interp_tests =
  [
    Alcotest.test_case "ring exchange delivers neighbour values" `Quick
      (fun () ->
        let src =
          {|func main() {
             var left = 0;
             MPI_Send(rank() * 10, (rank() + 1) % size(), 0);
             left = MPI_Recv((rank() + size() - 1) % size(), 0);
             print(left);
           }|}
        in
        let result = Interp.Sim.run ~config:(config ()) (parse src) in
        Alcotest.(check bool) "finishes" true (Interp.Sim.is_finished result);
        Alcotest.(check (list int)) "rank 0 got rank 2's value" [ 20 ]
          (rank_prints result 0);
        Alcotest.(check (list int)) "rank 1 got rank 0's value" [ 0 ]
          (rank_prints result 1));
    Alcotest.test_case "receive blocks until the send happens" `Quick (fun () ->
        let src =
          {|func main() {
             var v = 0;
             if (rank() == 0) { v = MPI_Recv(1, 5); print(v); }
             if (rank() == 1) { compute(50); MPI_Send(99, 0, 5); }
           }|}
        in
        let result = Interp.Sim.run ~config:(config ~nranks:2 ()) (parse src) in
        Alcotest.(check bool) "finishes" true (Interp.Sim.is_finished result);
        Alcotest.(check (list int)) "value delivered" [ 99 ] (rank_prints result 0));
    Alcotest.test_case "receive with no sender deadlocks with diagnostics"
      `Quick (fun () ->
        let src =
          {|func main() { var v = 0; if (rank() == 0) { v = MPI_Recv(1, 0); } }|}
        in
        let result = Interp.Sim.run ~config:(config ~nranks:2 ()) (parse src) in
        match result.Interp.Sim.outcome with
        | Interp.Sim.Deadlock blocked ->
            Alcotest.(check bool) "mentions MPI_Recv" true
              (List.exists
                 (fun s ->
                   let rec has i =
                     i + 8 <= String.length s
                     && (String.sub s i 8 = "MPI_Recv" || has (i + 1))
                   in
                   has 0)
                 blocked)
        | o ->
            Alcotest.failf "expected deadlock, got %s"
              (Interp.Sim.outcome_to_string o));
    Alcotest.test_case "any_source receive" `Quick (fun () ->
        let src =
          {|func main() {
             var v = 0;
             if (rank() == 0) {
               v = MPI_Recv(0 - 1, 0);
               print(v);
               v = MPI_Recv(0 - 1, 0);
               print(v);
             } else {
               MPI_Send(rank(), 0, 0);
             }
           }|}
        in
        let result = Interp.Sim.run ~config:(config ()) (parse src) in
        Alcotest.(check bool) "finishes" true (Interp.Sim.is_finished result);
        Alcotest.(check int) "two prints" 2 (List.length (rank_prints result 0)));
    Alcotest.test_case "P2P mixes with collectives" `Quick (fun () ->
        let src =
          {|func main() {
             var v = rank();
             MPI_Send(v, (rank() + 1) % size(), 0);
             v = MPI_Recv((rank() + size() - 1) % size(), 0);
             v = MPI_Allreduce(v, sum);
             print(v);
           }|}
        in
        let result = Interp.Sim.run ~config:(config ()) (parse src) in
        Alcotest.(check bool) "finishes" true (Interp.Sim.is_finished result);
        Alcotest.(check (list int)) "sum of all" [ 3 ] (rank_prints result 0));
  ]

let scope_tests =
  [
    Alcotest.test_case "the analyses ignore P2P traffic" `Quick (fun () ->
        (* Rank-divergent P2P is legal MPI (and common); PARCOACH's scope
           is collectives, so no warnings here. *)
        let src =
          {|func main() {
             var v = 0;
             if (rank() == 0) { MPI_Send(1, 1, 0); }
             if (rank() == 1) { v = MPI_Recv(0, 0); }
             MPI_Barrier();
           }|}
        in
        let report = Parcoach.Driver.analyze (parse src) in
        Alcotest.(check int) "no warnings" 0 (Parcoach.Driver.warning_count report);
        (* And the program runs clean, instrumented or not. *)
        let inst = Parcoach.Instrument.instrument report Parcoach.Instrument.Selective in
        Alcotest.(check bool) "runs" true
          (Interp.Sim.is_finished (Interp.Sim.run ~config:(config ~nranks:2 ()) inst)));
    Alcotest.test_case "P2P round-trips through the printer" `Quick (fun () ->
        let src =
          {|func main() { var v = 0; MPI_Send(v + 1, (rank() + 1) % size(), 3);
             v = MPI_Recv(0 - 1, 3); }|}
        in
        let p = parse src in
        let printed = Minilang.Pretty.program_to_string p in
        Alcotest.(check bool) "equal" true
          (Minilang.Ast.equal_program p
             (Minilang.Parser.parse_string ~file:"rt" printed)));
    Alcotest.test_case "recv taints, send does not define" `Quick (fun () ->
        let src =
          {|func main() { var v = 0; v = MPI_Recv(0 - 1, 0);
             if (v > 0) { MPI_Barrier(); } }|}
        in
        let g = Cfg.Build.of_func (Minilang.Ast.main_func (parse src)) in
        let dep = Cfg.Dataflow.cond_rank_dependent g ~params:[] in
        let conds =
          Cfg.Graph.filter_nodes g (function Cfg.Graph.Cond _ -> true | _ -> false)
        in
        Alcotest.(check bool) "received value is tainted" true
          (dep (List.hd conds)));
  ]

let limitation_tests =
  [
    Alcotest.test_case
      "CC cannot break a CC↔Recv cycle (documented limitation)" `Quick
      (fun () ->
        (* Rank 0 skips the whole else-branch: the other ranks block in
           MPI_Recv waiting for a send that sits behind rank 0's CC, so
           the CC rendezvous never completes.  The instrumented program
           deadlocks — like the real tool, CC converts collective-sequence
           divergence into clean aborts, not arbitrary P2P cycles. *)
        let src =
          {|func main() {
             var v = 0;
             if (rank() == 0) { compute(1); } else {
               v = MPI_Bcast(0, 0);
               MPI_Send(v, (rank() + 1) % size(), 1);
               v = MPI_Recv((rank() + size() - 1) % size(), 1);
             }
           }|}
        in
        let p = parse src in
        let report = Parcoach.Driver.analyze p in
        Alcotest.(check bool) "statically flagged" true
          (Parcoach.Driver.warning_count report > 0);
        let inst = Parcoach.Instrument.instrument report Parcoach.Instrument.Selective in
        match (Interp.Sim.run ~config:(config ()) inst).Interp.Sim.outcome with
        | Interp.Sim.Deadlock _ | Interp.Sim.Aborted _ -> ()
        | o ->
            Alcotest.failf "expected deadlock or abort, got %s"
              (Interp.Sim.outcome_to_string o));
  ]

let suite =
  [
    ("p2p.mailbox", mailbox_tests);
    ("p2p.limitation", limitation_tests);
    ("p2p.interp", interp_tests);
    ("p2p.scope", scope_tests);
  ]
