(** Tests for the multicore analysis pipeline:

    - the packed CSR adjacency: O(1)-append edge buffers (large chains
      and high-out-degree fans build fast), freeze/invalidate semantics,
      hashed [has_edge], parallel-edge preservation;
    - the marker-based dominance frontiers against a reference
      reimplementation of the former [List.mem] Cytron loop (qcheck
      property over random programs, both directions);
    - the {!Cfg.Actx} memoization contract (physical reuse, cache
      population, taint keying) and {!Parcoach.Interproc} with a shared
      context;
    - determinism of the domain-parallel {!Parcoach.Driver.analyze}:
      [jobs:4] and [jobs:1] must produce identical warnings, CC sites and
      JSON reports on every sample and generated program. *)

open Cfg

(* ------------------------------------------------------------------ *)
(* Packed adjacency                                                    *)
(* ------------------------------------------------------------------ *)

(* [Graph.create] reserves ids 0/1 for entry/exit but the builder adds
   the nodes; mirror that here. *)
let new_graph name =
  let g = Graph.create name in
  ignore (Graph.add_node g Graph.Entry);
  ignore (Graph.add_node g Graph.Exit);
  g

(* A chain entry -> s0 -> s1 -> ... -> exit of [n] simple nodes. *)
let build_chain n =
  let g = new_graph "chain" in
  let prev = ref g.Graph.entry in
  for _ = 1 to n do
    let id = Graph.add_node g (Graph.Simple []) in
    Graph.add_edge g !prev id;
    prev := id
  done;
  Graph.add_edge g !prev g.Graph.exit;
  g

let test_chain_fast () =
  let n = 10_000 in
  let t0 = Sys.time () in
  let g = build_chain n in
  Graph.freeze g;
  (* Traversals and dominance must also survive a 10k-deep chain (the
     DFS and frontier walks are iterative, not recursive). *)
  let rpo = Traversal.rpo_array g in
  let dom = Dominance.compute g Dominance.Forward in
  let pdom = Dominance.compute g Dominance.Backward in
  ignore (Dominance.frontiers dom);
  ignore (Dominance.frontiers pdom);
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check int) "all nodes reachable" (n + 2) (Array.length rpo);
  Alcotest.(check bool) "entry dominates exit" true
    (Dominance.dominates dom g.Graph.entry g.Graph.exit);
  (* The former [succs @ [b]] append made this quadratic; packed buffers
     build it in well under a second even on a loaded machine. *)
  Alcotest.(check bool)
    (Printf.sprintf "10k-node chain in %.3fs" elapsed)
    true (elapsed < 2.0)

let test_fan_fast () =
  (* One node with 10k out-edges: the adversarial case for the old
     list-append [add_edge] (quadratic in the out-degree). *)
  let n = 10_000 in
  let g = new_graph "fan" in
  let hub = Graph.add_node g (Graph.Simple []) in
  Graph.add_edge g g.Graph.entry hub;
  let t0 = Sys.time () in
  for _ = 1 to n do
    let leaf = Graph.add_node g (Graph.Simple []) in
    Graph.add_edge g hub leaf;
    Graph.add_edge g leaf g.Graph.exit
  done;
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check int) "out-degree" n (Graph.out_degree g hub);
  Alcotest.(check int) "exit in-degree" n (Graph.in_degree g g.Graph.exit);
  Alcotest.(check bool)
    (Printf.sprintf "10k-edge fan in %.3fs" elapsed)
    true (elapsed < 2.0)

let test_freeze_invalidation () =
  let g = new_graph "freeze" in
  let a = Graph.add_node g (Graph.Simple []) in
  Graph.add_edge g g.Graph.entry a;
  Graph.add_edge g a g.Graph.exit;
  Graph.freeze g;
  Alcotest.(check bool) "frozen after freeze" true (Graph.is_frozen g);
  Alcotest.(check (list int)) "succs of entry" [ a ]
    (Graph.succs g g.Graph.entry);
  (* Mutation invalidates the packed form; the next query rebuilds it. *)
  let b = Graph.add_node g (Graph.Simple []) in
  Alcotest.(check bool) "thawed by add_node" false (Graph.is_frozen g);
  Graph.add_edge g a b;
  Graph.add_edge g b g.Graph.exit;
  Alcotest.(check (list int)) "succs refreshed" [ g.Graph.exit; b ]
    (Graph.succs g a);
  Alcotest.(check bool) "re-frozen by the query" true (Graph.is_frozen g);
  Alcotest.(check (list int)) "preds refreshed" [ a; b ]
    (Graph.preds g g.Graph.exit)

let test_has_edge_and_parallel_edges () =
  let g = new_graph "parallel" in
  let cond =
    Graph.add_node g
      (Graph.Cond
         {
           expr = Minilang.Ast.Int 1;
           stmt = Minilang.Ast.mk (Minilang.Ast.Compute (Minilang.Ast.Int 0));
         })
  in
  let join = Graph.add_node g (Graph.Simple []) in
  Graph.add_edge g g.Graph.entry cond;
  (* A [Cond] with two empty branches: both out-edges reach the same
     join.  The packed adjacency must keep both (branch order is
     significant), while [has_edge] answers membership. *)
  Graph.add_edge g cond join;
  Graph.add_edge g cond join;
  Graph.add_edge g join g.Graph.exit;
  Alcotest.(check (list int)) "parallel succs kept" [ join; join ]
    (Graph.succs g cond);
  Alcotest.(check int) "join in-degree counts both" 2 (Graph.in_degree g join);
  Alcotest.(check bool) "has_edge present" true (Graph.has_edge g cond join);
  Alcotest.(check bool) "has_edge absent" false (Graph.has_edge g join cond);
  Alcotest.(check bool) "has_edge entry->cond" true
    (Graph.has_edge g g.Graph.entry cond)

(* ------------------------------------------------------------------ *)
(* Frontier equivalence with the legacy List.mem implementation        *)
(* ------------------------------------------------------------------ *)

(* Reference reimplementation of the frontier computation as it was
   before the marker-array dedup: Cytron runner walks with a [List.mem]
   membership scan.  Only the dedup strategy differs, so both must agree
   on every graph. *)
let legacy_frontiers (t : Dominance.t) =
  let g = t.Dominance.g in
  let n = Graph.nb_nodes g in
  let df = Array.make n [] in
  let prevs id =
    match t.Dominance.dir with
    | Dominance.Forward -> Graph.preds g id
    | Dominance.Backward -> Graph.succs g id
  in
  let reachable id = t.Dominance.idom.(id) >= 0 in
  for id = 0 to n - 1 do
    if reachable id then begin
      let ps = List.filter reachable (prevs id) in
      if List.length ps >= 2 then
        List.iter
          (fun p ->
            let runner = ref p in
            while !runner <> t.Dominance.idom.(id) do
              if not (List.mem id df.(!runner)) then
                df.(!runner) <- id :: df.(!runner);
              runner := t.Dominance.idom.(!runner)
            done)
          ps
    end
  done;
  df

let check_frontiers_agree g dir =
  let t = Dominance.compute g dir in
  let fast = Dominance.frontiers t in
  let slow = legacy_frontiers t in
  let norm df id = List.sort_uniq Int.compare df.(id) in
  let ok = ref true in
  for id = 0 to Graph.nb_nodes g - 1 do
    if norm fast id <> norm slow id then ok := false
  done;
  !ok

let frontier_equivalence_prop =
  QCheck.Test.make ~count:60
    ~name:"marker frontiers = legacy List.mem frontiers (both directions)"
    Test_qcheck.arb_program (fun program ->
      List.for_all
        (fun g ->
          check_frontiers_agree g Dominance.Forward
          && check_frontiers_agree g Dominance.Backward)
        (Build.of_program program))

let test_frontier_equivalence_samples () =
  let dir = "../examples/programs" in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".hml" then
        let p = Minilang.Parser.parse_file (Filename.concat dir f) in
        List.iter
          (fun g ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s forward" f g.Graph.fname)
              true
              (check_frontiers_agree g Dominance.Forward);
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s backward" f g.Graph.fname)
              true
              (check_frontiers_agree g Dominance.Backward))
          (Build.of_program p))
    (Sys.readdir dir)

(* ------------------------------------------------------------------ *)
(* Actx memoization                                                    *)
(* ------------------------------------------------------------------ *)

let test_actx_memoization () =
  let p =
    Minilang.Parser.parse_string ~file:"actx"
      {|func main(n) {
          var x = 0;
          if (n < 3) { x = MPI_Allreduce(1, sum); } else { compute(2); }
          MPI_Barrier();
        }|}
  in
  let g = List.hd (Build.of_program p) in
  let actx = Actx.create g in
  Alcotest.(check bool) "create freezes the graph" true (Graph.is_frozen g);
  Alcotest.(check (list string)) "fresh context is empty" []
    (Actx.populated actx);
  (* Every getter computes once and then returns the same structure. *)
  Alcotest.(check bool) "rpo reused" true (Actx.rpo actx == Actx.rpo actx);
  Alcotest.(check bool) "dom reused" true (Actx.dom actx == Actx.dom actx);
  Alcotest.(check bool) "pdom reused" true (Actx.pdom actx == Actx.pdom actx);
  Alcotest.(check bool) "frontiers reused" true
    (Actx.pdom_frontiers actx == Actx.pdom_frontiers actx);
  Alcotest.(check bool) "taint reused for equal params" true
    (Actx.rank_dependent actx ~params:[ "n" ]
    == Actx.rank_dependent actx ~params:[ "n" ]);
  let populated = Actx.populated actx in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " cached") true (List.mem name populated))
    [ "rpo"; "dom"; "pdom"; "pdom_frontiers"; "rank_dep" ];
  (* The cached structures agree with direct computation. *)
  Alcotest.(check (list int)) "rpo = Traversal.rpo_array"
    (Array.to_list (Traversal.rpo_array g))
    (Array.to_list (Actx.rpo actx));
  let direct = Dominance.compute g Dominance.Backward in
  Alcotest.(check (list int)) "pdom idom = direct"
    (Array.to_list direct.Dominance.idom)
    (Array.to_list (Actx.pdom actx).Dominance.idom);
  Alcotest.(check (list int)) "pdf_plus = Dominance.pdf_plus"
    (Dominance.pdf_plus g (Graph.collective_nodes g))
    (Actx.pdf_plus actx (Graph.collective_nodes g))

let test_interproc_with_actx () =
  let p =
    Minilang.Parser.parse_string ~file:"interproc-actx"
      {|func main(n) {
          if (rank() == 0) { MPI_Barrier(); }
          MPI_Allgather(1);
        }|}
  in
  let g = List.hd (Build.of_program p) in
  let actx = Actx.create g in
  let with_ctx =
    Parcoach.Interproc.analyze ~actx g ~taint_filter:true ~params:[ "n" ]
  in
  let fresh = Parcoach.Interproc.analyze g ~taint_filter:true ~params:[ "n" ] in
  Alcotest.(check bool) "same classes" true
    (with_ctx.Parcoach.Interproc.classes = fresh.Parcoach.Interproc.classes);
  Alcotest.(check (list int)) "same CC sites"
    (Parcoach.Interproc.cc_sites fresh)
    (Parcoach.Interproc.cc_sites with_ctx);
  Alcotest.check_raises "foreign context rejected"
    (Invalid_argument "Interproc.analyze: actx belongs to a different graph")
    (fun () ->
      let other = Actx.create (new_graph "other") in
      ignore
        (Parcoach.Interproc.analyze ~actx:other g ~taint_filter:false
           ~params:[]))

(* ------------------------------------------------------------------ *)
(* Domain-parallel driver determinism                                  *)
(* ------------------------------------------------------------------ *)

let check_jobs_deterministic name options program =
  let seq = Parcoach.Driver.analyze ~options ~jobs:1 program in
  let par = Parcoach.Driver.analyze ~options ~jobs:4 program in
  Alcotest.(check bool)
    (name ^ ": warnings identical")
    true
    (Parcoach.Driver.all_warnings seq = Parcoach.Driver.all_warnings par);
  List.iter2
    (fun (a : Parcoach.Driver.func_report) (b : Parcoach.Driver.func_report) ->
      Alcotest.(check string) (name ^ ": func order") a.Parcoach.Driver.fname
        b.Parcoach.Driver.fname;
      Alcotest.(check (list int))
        (name ^ "/" ^ a.Parcoach.Driver.fname ^ ": CC sites")
        a.Parcoach.Driver.cc_sites b.Parcoach.Driver.cc_sites)
    seq.Parcoach.Driver.funcs par.Parcoach.Driver.funcs;
  Alcotest.(check string)
    (name ^ ": JSON byte-identical")
    (Parcoach.Json_report.to_string seq)
    (Parcoach.Json_report.to_string par)

let full_options =
  {
    Parcoach.Driver.default_options with
    Parcoach.Driver.taint_filter = true;
    Parcoach.Driver.interprocedural = true;
  }

let test_parallel_determinism_samples () =
  let dir = "../examples/programs" in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".hml" then begin
        let p = Minilang.Parser.parse_file (Filename.concat dir f) in
        check_jobs_deterministic f Parcoach.Driver.default_options p;
        check_jobs_deterministic (f ^ "+taint+interproc") full_options p
      end)
    (Sys.readdir dir)

let test_parallel_determinism_generated () =
  List.iter
    (fun (e : Benchsuite.Catalog.entry) ->
      let p = e.Benchsuite.Catalog.generate_small () in
      check_jobs_deterministic e.Benchsuite.Catalog.name
        Parcoach.Driver.default_options p;
      check_jobs_deterministic
        (e.Benchsuite.Catalog.name ^ "+taint+interproc")
        full_options p)
    Benchsuite.Catalog.all

let parallel_determinism_prop =
  QCheck.Test.make ~count:25
    ~name:"Driver.analyze jobs:4 = jobs:1 on random programs"
    Test_qcheck.arb_program (fun program ->
      let seq = Parcoach.Driver.analyze ~jobs:1 program in
      let par = Parcoach.Driver.analyze ~jobs:4 program in
      Parcoach.Driver.all_warnings seq = Parcoach.Driver.all_warnings par
      && Parcoach.Json_report.to_string seq
         = Parcoach.Json_report.to_string par)

let test_jobs_validation () =
  let p = Minilang.Parser.parse_string ~file:"v" {|func main() { compute(1); }|} in
  Alcotest.check_raises "jobs:0 rejected"
    (Invalid_argument "Driver.analyze: jobs must be >= 1") (fun () ->
      ignore (Parcoach.Driver.analyze ~jobs:0 p));
  (* More jobs than functions is clamped, not an error. *)
  ignore (Parcoach.Driver.analyze ~jobs:64 p)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "perf.packed-graph",
      [
        Alcotest.test_case "10k-node chain builds and analyses fast" `Quick
          test_chain_fast;
        Alcotest.test_case "10k-edge fan builds fast" `Quick test_fan_fast;
        Alcotest.test_case "freeze / mutation invalidation" `Quick
          test_freeze_invalidation;
        Alcotest.test_case "has_edge and parallel edges" `Quick
          test_has_edge_and_parallel_edges;
      ] );
    ( "perf.frontiers",
      [
        Alcotest.test_case "sample programs: marker = legacy" `Quick
          test_frontier_equivalence_samples;
        QCheck_alcotest.to_alcotest frontier_equivalence_prop;
      ] );
    ( "perf.actx",
      [
        Alcotest.test_case "memoization contract" `Quick test_actx_memoization;
        Alcotest.test_case "interproc shares the context" `Quick
          test_interproc_with_actx;
      ] );
    ( "perf.parallel-driver",
      [
        Alcotest.test_case "sample programs: jobs 4 = jobs 1" `Quick
          test_parallel_determinism_samples;
        Alcotest.test_case "generated benchmarks: jobs 4 = jobs 1" `Quick
          test_parallel_determinism_generated;
        QCheck_alcotest.to_alcotest parallel_determinism_prop;
        Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
      ] );
  ]
