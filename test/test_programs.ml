(** Pipeline tests over the sample [.hml] programs shipped in
    [examples/programs]: parse, validate, analyse, run (instrumented and
    not) and post-mortem-check each one. *)

let programs_dir = "../examples/programs"

let load name = Minilang.Parser.parse_file (Filename.concat programs_dir name)

let config =
  {
    Interp.Sim.nranks = 3;
    default_nthreads = 3;
    schedule = `Random 42;
    max_steps = 2_000_000;
    entry = "main";
    record_trace = true;
    thread_level = Mpisim.Thread_level.Multiple;
  }

let tests =
  [
    Alcotest.test_case "jacobi.hml: clean hybrid program" `Quick (fun () ->
        let p = load "jacobi.hml" in
        Alcotest.(check bool) "validates" true
          (Minilang.Validate.is_valid (Minilang.Validate.check_program p));
        let report = Parcoach.Driver.analyze p in
        (* The convergence loop is data-dependent: flagged statically... *)
        Alcotest.(check bool) "loop collective flagged" true
          (Parcoach.Driver.warning_count report > 0);
        (* ... but clean with the taint filter (the bound is replicated). *)
        let filtered =
          Parcoach.Driver.analyze
            ~options:
              { Parcoach.Driver.default_options with Parcoach.Driver.taint_filter = true }
            p
        in
        Alcotest.(check int) "taint-clean" 0
          (Parcoach.Driver.warning_count filtered);
        let inst = Parcoach.Instrument.instrument report Parcoach.Instrument.Selective in
        let result = Interp.Sim.run ~config inst in
        Alcotest.(check bool) "instrumented run finishes" true
          (Interp.Sim.is_finished result);
        Alcotest.(check bool) "post-mortem traces match" true
          (Mustlike.Overlay.is_match
             (Mustlike.Overlay.check_engine result.Interp.Sim.engine)));
    Alcotest.test_case "buggy_halo.hml: both planted bugs are reported" `Quick
      (fun () ->
        let p = load "buggy_halo.hml" in
        Alcotest.(check bool) "validates" true
          (Minilang.Validate.is_valid (Minilang.Validate.check_program p));
        let report = Parcoach.Driver.analyze p in
        let classes =
          List.map fst (Parcoach.Driver.warnings_by_class report)
        in
        Alcotest.(check bool) "mismatch warning" true
          (List.mem "collective mismatch" classes);
        Alcotest.(check bool) "concurrency warning" true
          (List.mem "concurrent collective calls" classes);
        let inst = Parcoach.Instrument.instrument report Parcoach.Instrument.Selective in
        let result = Interp.Sim.run ~config inst in
        (* The rank-dependent reduce guarantees the CC check trips even if
           the single/single race does not manifest. *)
        Alcotest.(check bool) "clean abort" true (Interp.Sim.is_clean_abort result));
    Alcotest.test_case "pipeline.hml: funneled pattern runs clean" `Quick
      (fun () ->
        let p = load "pipeline.hml" in
        let report = Parcoach.Driver.analyze p in
        let inst = Parcoach.Instrument.instrument report Parcoach.Instrument.Selective in
        let plain = Interp.Sim.run ~config p in
        let checked = Interp.Sim.run ~config inst in
        Alcotest.(check bool) "plain finishes" true (Interp.Sim.is_finished plain);
        Alcotest.(check bool) "checked finishes" true (Interp.Sim.is_finished checked);
        (* Master-only MPI requires FUNNELED at most. *)
        let fr = Option.get (Parcoach.Driver.func_report report "stage") in
        List.iter
          (fun (e : Parcoach.Monothread.entry) ->
            Alcotest.(check bool) "funneled suffices" true
              (Mpisim.Thread_level.includes Mpisim.Thread_level.Funneled
                 e.Parcoach.Monothread.required))
          fr.Parcoach.Driver.phase1.Parcoach.Monothread.entries);
    Alcotest.test_case "all sample programs round-trip through the printer"
      `Quick (fun () ->
        List.iter
          (fun name ->
            let p = load name in
            let printed = Minilang.Pretty.program_to_string p in
            let p2 = Minilang.Parser.parse_string ~file:name printed in
            Alcotest.(check bool) (name ^ " round-trips") true
              (Minilang.Ast.equal_program p p2))
          [ "jacobi.hml"; "buggy_halo.hml"; "pipeline.hml" ]);
    Alcotest.test_case
      "farm_racy_update.hml: race covered statically, caught when dropped"
      `Quick (fun () ->
        let p = load "farm_racy_update.hml" in
        Alcotest.(check bool) "validates" true
          (Minilang.Validate.is_valid (Minilang.Validate.check_program p));
        let report =
          Parcoach.Driver.analyze ~options:Farm.Oracle.options p
        in
        Alcotest.(check bool) "static data-race pair" true
          (List.mem_assoc "data race"
             (Parcoach.Driver.warnings_by_class report));
        let sim = { Farm.Oracle.default_sim with Farm.Oracle.seeds = [ 1; 2 ] } in
        let clean = Farm.Oracle.observe ~sim ~report p in
        Alcotest.(check int) "clean checker: no violations" 0
          (List.length clean.Farm.Oracle.violations);
        Alcotest.(check bool) "dynamic race observed" true
          (clean.Farm.Oracle.dyn_races > 0);
        let drilled =
          Farm.Oracle.observe ~handicap:Farm.Oracle.Drop_race_edge ~sim
            ~report p
        in
        Alcotest.(check bool) "dropped MHP edge is caught" true
          (List.exists
             (fun (v : Farm.Oracle.violation) ->
               String.equal v.Farm.Oracle.vkind "race-uncovered")
             drilled.Farm.Oracle.violations));
    Alcotest.test_case
      "farm_rank_divergence.hml: mismatch warned, caught when blinded"
      `Quick (fun () ->
        let p = load "farm_rank_divergence.hml" in
        Alcotest.(check bool) "validates" true
          (Minilang.Validate.is_valid (Minilang.Validate.check_program p));
        let report =
          Parcoach.Driver.analyze ~options:Farm.Oracle.options p
        in
        Alcotest.(check bool) "statically warned" true
          (Parcoach.Driver.warning_count report > 0);
        let sim = { Farm.Oracle.default_sim with Farm.Oracle.seeds = [ 1; 2 ] } in
        let clean = Farm.Oracle.observe ~sim ~report p in
        Alcotest.(check int) "clean checker: no violations" 0
          (List.length clean.Farm.Oracle.violations);
        let drilled =
          Farm.Oracle.observe ~handicap:Farm.Oracle.Blind_mismatch ~sim
            ~report p
        in
        Alcotest.(check bool) "blinded checker caught by a stopped run" true
          (List.exists
             (fun (v : Farm.Oracle.violation) ->
               String.equal v.Farm.Oracle.vkind "static-clean-run-stop")
             drilled.Farm.Oracle.violations));
    Alcotest.test_case
      "leaky_request.hml: path-dependent leak, static and dynamic" `Quick
      (fun () ->
        let p = load "leaky_request.hml" in
        Alcotest.(check bool) "validates" true
          (Minilang.Validate.is_valid (Minilang.Validate.check_program p));
        let report =
          Parcoach.Driver.analyze
            ~options:
              {
                Parcoach.Driver.default_options with
                Parcoach.Driver.requests = true;
                taint_filter = true;
              }
            p
        in
        let classes =
          List.map fst (Parcoach.Driver.warnings_by_class report)
        in
        Alcotest.(check bool) "leak warning" true
          (List.mem "request leak" classes);
        Alcotest.(check bool) "stale-buffer warning" true
          (List.mem "use before completion" classes);
        let result = Interp.Sim.run ~config p in
        Alcotest.(check bool) "finishes" true (Interp.Sim.is_finished result);
        Alcotest.(check bool) "leak observed on every rank" true
          (List.length
             (List.filter
                (function
                  | Interp.Sim.Leaked_request _ -> true
                  | _ -> false)
                result.Interp.Sim.lifecycle)
          = config.Interp.Sim.nranks));
    Alcotest.test_case
      "ibarrier_divergence.hml: rank-divergent completion, static and dynamic"
      `Quick (fun () ->
        let p = load "ibarrier_divergence.hml" in
        Alcotest.(check bool) "validates" true
          (Minilang.Validate.is_valid (Minilang.Validate.check_program p));
        let report =
          Parcoach.Driver.analyze
            ~options:
              {
                Parcoach.Driver.default_options with
                Parcoach.Driver.requests = true;
                taint_filter = true;
              }
            p
        in
        let classes =
          List.map fst (Parcoach.Driver.warnings_by_class report)
        in
        Alcotest.(check bool) "completion-mismatch warning" true
          (List.mem "completion mismatch" classes);
        Alcotest.(check bool) "leak warning" true
          (List.mem "request leak" classes);
        let result = Interp.Sim.run ~config p in
        Alcotest.(check bool) "finishes" true (Interp.Sim.is_finished result);
        (* Every rank but the waiting rank 0 leaks its request. *)
        Alcotest.(check int) "leaks on the non-waiting ranks"
          (config.Interp.Sim.nranks - 1)
          (List.length
             (List.filter
                (function
                  | Interp.Sim.Leaked_request _ -> true
                  | _ -> false)
                result.Interp.Sim.lifecycle)));
  ]

let suite = [ ("programs.samples", tests) ]
