(** Property-based end-to-end tests.

    A generator produces random {e correct-by-construction} hybrid
    programs: control flow is rank-uniform (no [rank()]/[omp_tid()] in
    conditions), collectives appear only in monothreaded, ordered contexts
    (top level or non-[nowait] [single] regions), and shared-variable
    updates inside parallel regions go through [critical] with commutative
    increments — so every run is deterministic and must finish.

    Properties:
    - generated programs pass the validator;
    - pretty-print → parse is the identity (structural equality);
    - parallelism words have no inconsistencies;
    - the full pipeline (analyse → selective instrumentation → simulate)
      finishes, with per-rank print traces identical to the uninstrumented
      run;
    - injecting a rank-divergence bug never lets the instrumented run
      deadlock or hit the step limit: it either finishes (bug in dead code
      or benign) or aborts cleanly. *)

open Minilang
module Gen = QCheck.Gen

let shared_vars = [ "x0"; "x1"; "x2"; "x3" ]

(* Uniform integer expressions over the shared variables. *)
let gen_expr : Ast.expr Gen.t =
  let open Gen in
  sized_size (int_bound 2) (fun n ->
      fix
        (fun self n ->
          if n = 0 then
            oneof
              [
                map (fun i -> Ast.Int i) (int_range 0 9);
                map (fun v -> Ast.Var v) (oneofl shared_vars);
                return Ast.Size;
              ]
          else
            oneof
              [
                map (fun i -> Ast.Int i) (int_range 0 9);
                map2
                  (fun op (a, b) -> Ast.Binop (op, a, b))
                  (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
                  (pair (self (n - 1)) (self (n - 1)));
              ])
        n)

let gen_cond : Ast.expr Gen.t =
  let open Gen in
  map2
    (fun op (a, b) -> Ast.Binop (op, a, b))
    (oneofl [ Ast.Lt; Ast.Le; Ast.Eq; Ast.Ne ])
    (pair gen_expr gen_expr)

let gen_collective : Ast.stmt Gen.t =
  let open Gen in
  let mk = Ast.mk ~loc:Loc.none in
  oneof
    [
      return (mk (Ast.Coll (None, Ast.Barrier)));
      map
        (fun e -> mk (Ast.Coll (Some "x0", Ast.Allreduce { op = Ast.Rsum; value = e })))
        gen_expr;
      map
        (fun e -> mk (Ast.Coll (Some "x1", Ast.Bcast { root = Ast.Int 0; value = e })))
        gen_expr;
      map
        (fun e -> mk (Ast.Coll (Some "x2", Ast.Allgather { value = e })))
        gen_expr;
    ]

(* Statements allowed inside a parallel region body: deterministic under
   any schedule. *)
let gen_par_item : Ast.stmt Gen.t =
  let open Gen in
  let mk = Ast.mk ~loc:Loc.none in
  oneof
    [
      map (fun e -> mk (Ast.Compute e)) gen_expr;
      return (mk Ast.Omp_barrier);
      map
        (fun (v, c) ->
          mk
            (Ast.Omp_critical
               ( None,
                 [ mk (Ast.Assign (v, Ast.Binop (Ast.Add, Ast.Var v, Ast.Int c))) ] )))
        (pair (oneofl shared_vars) (int_range 1 5));
      map
        (fun n ->
          mk
            (Ast.Omp_for
               {
                 var = "it";
                 reduction = None;
                 lo = Ast.Int 0;
                 hi = Ast.Int n;
                 nowait = false;
                 body = [ mk (Ast.Compute (Ast.Int 1)) ];
               }))
        (int_range 1 6);
      (* Worksharing reduction into a shared variable: deterministic for
         the commutative-associative integer operators. *)
      map2
        (fun (x, op) n ->
          mk
            (Ast.Omp_for
               {
                 var = "it";
                 reduction = Some (op, x);
                 lo = Ast.Int 0;
                 hi = Ast.Int n;
                 nowait = false;
                 body =
                   [
                     mk
                       (Ast.Assign
                          (x, Ast.Binop (Ast.Add, Ast.Var x, Ast.Var "it")));
                   ];
               }))
        (pair (oneofl shared_vars) (oneofl [ Ast.Rsum; Ast.Rmax; Ast.Rmin ]))
        (int_range 1 6);
      map
        (fun coll -> mk (Ast.Omp_single { nowait = false; body = [ coll ] }))
        gen_collective;
      map
        (fun e -> mk (Ast.Omp_master [ mk (Ast.Compute e) ]))
        gen_expr;
    ]

(* Uniform ring exchange: deterministic (each rank's received value is a
   pure function of its neighbour's uniform expression) and deadlock-free
   (sends are eager). *)
let gen_ring_exchange : Ast.stmt list Gen.t =
  let open Gen in
  let mk = Ast.mk ~loc:Loc.none in
  map2
    (fun e tag ->
      [
        mk
          (Ast.Send
             {
               value = e;
               dest =
                 Ast.Binop (Ast.Mod, Ast.Binop (Ast.Add, Ast.Rank, Ast.Int 1), Ast.Size);
               tag = Ast.Int tag;
             });
        mk
          (Ast.Recv
             {
               target = "x3";
               src =
                 Ast.Binop
                   ( Ast.Mod,
                     Ast.Binop (Ast.Add, Ast.Rank, Ast.Binop (Ast.Sub, Ast.Size, Ast.Int 1)),
                     Ast.Size );
               tag = Ast.Int tag;
             });
      ])
    gen_expr (int_range 0 3)

let rec gen_stmt fuel : Ast.stmt Gen.t =
  let open Gen in
  let mk = Ast.mk ~loc:Loc.none in
  let leaf =
    [
      map (fun e -> mk (Ast.Compute e)) gen_expr;
      map2 (fun v e -> mk (Ast.Assign (v, e))) (oneofl shared_vars) gen_expr;
      map (fun e -> mk (Ast.Print e)) gen_expr;
      gen_collective;
    ]
  in
  if fuel = 0 then oneof leaf
  else
    oneof
      (leaf
      @ [
          map2
            (fun c (bt, bf) -> mk (Ast.If (c, bt, bf)))
            gen_cond
            (pair (gen_block (fuel - 1)) (gen_block (fuel - 1)));
          map2
            (fun n body -> mk (Ast.For ("i", Ast.Int 0, Ast.Int n, body)))
            (int_range 1 3)
            (gen_block (fuel - 1));
          map2
            (fun n body ->
              mk (Ast.Omp_parallel { num_threads = Some (Ast.Int n); body }))
            (int_range 1 3)
            (list_size (int_range 1 4) gen_par_item);
          map
            (fun body -> mk (Ast.Omp_single { nowait = false; body }))
            (gen_block_nocoll (fuel - 1));
        ])

and gen_block fuel : Ast.block Gen.t =
  let open Gen in
  map2
    (fun stmts ring ->
      match ring with Some r -> stmts @ r | None -> stmts)
    (list_size (int_range 0 3) (gen_stmt fuel))
    (oneof [ return None; map (fun r -> Some r) gen_ring_exchange ])

(* Blocks without collectives or OpenMP, for orphaned single bodies. *)
and gen_block_nocoll _fuel : Ast.block Gen.t =
  let open Gen in
  let mk = Ast.mk ~loc:Loc.none in
  list_size (int_range 0 3)
    (oneof
       [
         map (fun e -> mk (Ast.Compute e)) gen_expr;
         map2 (fun v e -> mk (Ast.Assign (v, e))) (oneofl shared_vars) gen_expr;
       ])

let gen_program : Ast.program Gen.t =
  let open Gen in
  map
    (fun body ->
      let decls =
        List.map
          (fun v -> Ast.mk ~loc:Loc.none (Ast.Decl (v, Ast.Int 0)))
          shared_vars
      in
      Builder.number_lines
        { Ast.funcs = [ { Ast.fname = "main"; params = []; body = decls @ body; floc = Loc.none } ] })
    (gen_block 2)

let arb_program =
  QCheck.make ~print:Pretty.program_to_string gen_program

let config seed =
  {
    Interp.Sim.nranks = 2;
    default_nthreads = 2;
    schedule = `Random seed;
    max_steps = 2_000_000;
    entry = "main";
    record_trace = true;
    thread_level = Mpisim.Thread_level.Multiple;
  }

let per_rank result rank =
  List.filter_map
    (fun (r, t, v) -> if r = rank then Some (t, v) else None)
    (Interp.Sim.trace result)

(* Racy programs for the exploration-equivalence property: unlike
   [gen_program] these are deliberately schedule-dependent — nowait
   singles and master regions racing into collectives, rank-divergent
   collectives that deadlock — so the explorer sees several outcome
   classes, pruning opportunities and aborted/stuck prefixes. *)
let gen_racy_item : Ast.stmt Gen.t =
  let open Gen in
  let mk = Ast.mk ~loc:Loc.none in
  oneof
    [
      map (fun e -> mk (Ast.Compute e)) gen_expr;
      map
        (fun coll -> mk (Ast.Omp_single { nowait = true; body = [ coll ] }))
        gen_collective;
      map
        (fun coll -> mk (Ast.Omp_single { nowait = false; body = [ coll ] }))
        gen_collective;
      map (fun coll -> mk (Ast.Omp_master [ coll ])) gen_collective;
      return (mk Ast.Omp_barrier);
      map
        (fun (v, c) ->
          mk
            (Ast.Omp_critical
               ( None,
                 [ mk (Ast.Assign (v, Ast.Binop (Ast.Add, Ast.Var v, Ast.Int c))) ] )))
        (pair (oneofl shared_vars) (int_range 1 5));
    ]

let gen_racy_program : Ast.program Gen.t =
  let open Gen in
  let mk = Ast.mk ~loc:Loc.none in
  map2
    (fun items tail ->
      let decls =
        List.map
          (fun v -> mk (Ast.Decl (v, Ast.Int 0)))
          shared_vars
      in
      let par =
        mk (Ast.Omp_parallel { num_threads = Some (Ast.Int 2); body = items })
      in
      let body = decls @ [ par ] @ tail in
      Builder.number_lines
        {
          Ast.funcs =
            [ { Ast.fname = "main"; params = []; body; floc = Loc.none } ];
        })
    (list_size (int_range 1 3) gen_racy_item)
    (oneof
       [
         return [];
         map (fun coll -> [ coll ]) gen_collective;
         (* Rank-divergent collective: deadlocks under every schedule. *)
         return
           [ mk (Ast.If (Ast.Binop (Ast.Eq, Ast.Rank, Ast.Int 0),
                         [ mk (Ast.Coll (None, Ast.Barrier)) ], [])) ];
       ])

let arb_racy_program =
  QCheck.make ~print:Pretty.program_to_string gen_racy_program

(* Random byte soup must only ever raise the documented exceptions. *)
let gen_garbage =
  QCheck.make
    ~print:(fun s -> String.escaped s)
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_bound 80))

let properties =
  let open QCheck in
  [
    Test.make ~name:"parser never crashes on garbage" ~count:300 gen_garbage
      (fun s ->
        match Parser.parse_string ~file:"fuzz" s with
        | _ -> true
        | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> true);
    Test.make ~name:"generated programs validate" ~count:60 arb_program
      (fun p -> Validate.is_valid (Validate.check_program p));
    Test.make ~name:"pretty → parse round trip" ~count:60 arb_program (fun p ->
        let printed = Pretty.program_to_string p in
        Ast.equal_program p (Parser.parse_string ~file:"rt" printed));
    Test.make ~name:"CFGs of generated programs are well-formed (also after instrumentation)"
      ~count:60 arb_program (fun p ->
        let ok prog =
          List.for_all Cfg.Invariants.is_well_formed (Cfg.Build.of_program prog)
        in
        let report = Parcoach.Driver.analyze p in
        ok p
        && ok (Parcoach.Instrument.instrument report Parcoach.Instrument.Selective)
        && ok (Parcoach.Instrument.instrument report Parcoach.Instrument.Exhaustive));
    Test.make ~name:"parallelism words are consistent" ~count:60 arb_program
      (fun p ->
        List.for_all
          (fun g -> (Parcoach.Pword.compute g).Parcoach.Pword.inconsistencies = [])
          (Cfg.Build.of_program p));
    Test.make ~name:"pipeline finishes with identical per-rank traces"
      ~count:40 arb_program (fun p ->
        let report = Parcoach.Driver.analyze p in
        let instrumented =
          Parcoach.Instrument.instrument report Parcoach.Instrument.Selective
        in
        let plain = Interp.Sim.run ~config:(config 11) p in
        let checked = Interp.Sim.run ~config:(config 11) instrumented in
        plain.Interp.Sim.outcome = Interp.Sim.Finished
        && checked.Interp.Sim.outcome = Interp.Sim.Finished
        && List.for_all
             (fun rank -> per_rank plain rank = per_rank checked rank)
             [ 0; 1 ]);
    Test.make ~name:"instrumented injected bugs never deadlock (P2P-free) nor hang"
      ~count:40
      (pair arb_program (int_bound 1000))
      (fun (p, salt) ->
        let n = Benchsuite.Injector.collective_count p in
        QCheck.assume (n > 0);
        let has_p2p =
          List.exists
            (fun (f : Ast.func) ->
              Ast.fold_stmts
                (fun acc s ->
                  acc
                  ||
                  match s.Ast.sdesc with
                  | Ast.Send _ | Ast.Recv _ -> true
                  | _ -> false)
                false f.Ast.body)
            p.Ast.funcs
        in
        let buggy =
          Benchsuite.Injector.inject Benchsuite.Injector.Rank_divergence
            ~index:(salt mod n) p
        in
        let report = Parcoach.Driver.analyze buggy in
        let instrumented =
          Parcoach.Instrument.instrument report Parcoach.Instrument.Selective
        in
        match (Interp.Sim.run ~config:(config 13) instrumented).Interp.Sim.outcome with
        | Interp.Sim.Finished | Interp.Sim.Aborted _ | Interp.Sim.Fault _ -> true
        | Interp.Sim.Deadlock _ ->
            (* The CC agreement is itself a collective: a rank blocked in a
               point-to-point receive whose matching send sits behind
               another rank's CC forms a CC↔Recv cycle the checks cannot
               break — the same limitation the real PARCOACH has.
               Divergence in P2P-free programs must never deadlock. *)
            has_p2p
        | Interp.Sim.Step_limit -> false);
    (* The tentpole contract of the pruned parallel explorer: on racy
       programs it reports exactly the class set and per-class counts of
       the unpruned sequential reference, and is deterministic in the
       number of domains. *)
    Test.make ~name:"pruned exploration = reference (classes, counts, jobs)"
      ~count:25 arb_racy_program (fun p ->
        let config =
          {
            Interp.Sim.nranks = 2;
            default_nthreads = 2;
            schedule = `Round_robin;
            max_steps = 50_000;
            entry = "main";
            record_trace = false;
            thread_level = Mpisim.Thread_level.Multiple;
          }
        in
        let branch_depth = 4 and budget = 50_000 in
        let reference =
          Interp.Explore.outcomes_reference ~branch_depth ~budget ~config p
        in
        let pruned jobs =
          Interp.Explore.outcomes ~branch_depth ~budget ~jobs ~config p
        in
        let p1 = pruned 1 in
        let counts (s : Interp.Explore.summary) =
          ( s.Interp.Explore.finished,
            s.Interp.Explore.aborted,
            s.Interp.Explore.faulted,
            s.Interp.Explore.deadlocked,
            s.Interp.Explore.step_limited )
        in
        let classes (s : Interp.Explore.summary) =
          List.sort compare (List.map fst s.Interp.Explore.witnesses)
        in
        counts reference = counts p1
        && classes reference = classes p1
        && String.equal
             (Interp.Explore.summary_to_string p1)
             (Interp.Explore.summary_to_string (pruned 4)));
    (* The DPOR explorer picks one representative per Mazurkiewicz trace,
       so per-class counts legitimately differ from the reference — but
       its contract is class coverage: with a recording window spanning
       the whole run (racing-pair backtracks reach below [branch_depth],
       so we size it to the round-robin run length plus slack), it must
       reach every outcome class the reference reaches within its own
       divergence window (and possibly more).  Every witness must replay
       to its class, the summary accounting must balance, and the result
       must be deterministic in the number of domains. *)
    Test.make ~name:"DPOR covers the reference classes (witnesses, jobs)"
      ~count:25 arb_racy_program (fun p ->
        let config =
          {
            Interp.Sim.nranks = 2;
            default_nthreads = 2;
            schedule = `Round_robin;
            max_steps = 50_000;
            entry = "main";
            record_trace = false;
            thread_level = Mpisim.Thread_level.Multiple;
          }
        in
        let budget = 50_000 in
        let reference =
          Interp.Explore.outcomes_reference ~branch_depth:4 ~budget ~config p
        in
        let run_length =
          (Interp.Sim.run ~config p).Interp.Sim.stats.Interp.Sim.steps
        in
        let dpor jobs =
          Interp.Explore.outcomes_dpor ~branch_depth:(run_length + 16) ~budget
            ~jobs ~config p
        in
        let d1 = dpor 1 in
        let classes (s : Interp.Explore.summary) =
          List.sort compare (List.map fst s.Interp.Explore.witnesses)
        in
        List.for_all
          (fun c -> List.mem c (classes d1))
          (classes reference)
        && d1.Interp.Explore.runs
           = d1.Interp.Explore.replays + d1.Interp.Explore.pruned
        && List.for_all
             (fun (name, script) ->
               let r = Interp.Explore.replay ~config p script in
               String.equal name
                 (Interp.Explore.class_name r.Interp.Sim.outcome))
             d1.Interp.Explore.witnesses
        && String.equal
             (Interp.Explore.summary_to_string d1)
             (Interp.Explore.summary_to_string (dpor 4)));
  ]

let suite =
  [ ("qcheck.endtoend", List.map QCheck_alcotest.to_alcotest properties) ]
