(** Tests for the MHP-based static race pass ({!Parcoach.Races}) and its
    dynamic vector-clock oracle ({!Interp.Raceck}).

    The load-bearing property is differential: the static pass
    over-approximates, so on randomly generated racy programs {e every}
    race the dynamic oracle observes (same variable, same two source
    sites) must be covered by a static warning — while clean programs
    (benchsuite, critical-protected counters) must produce zero static
    race warnings. *)

open Parcoach

let parse src = Minilang.Parser.parse_string ~file:"test" src

let race_options = { Driver.default_options with Driver.races = true }

let analyze_races program = Driver.analyze ~options:race_options program

(* (var, site, site) with the sites in lexicographic order, matching the
   dynamic oracle's normalisation. *)
let static_race_keys report =
  List.filter_map
    (fun (w : Warning.t) ->
      match w.Warning.kind with
      | Warning.Data_race { var; loc1; loc2; _ } ->
          let s1 = Minilang.Loc.to_string loc1 in
          let s2 = Minilang.Loc.to_string loc2 in
          Some (if s1 <= s2 then (var, s1, s2) else (var, s2, s1))
      | _ -> None)
    (Driver.all_warnings report)

let race_warning_count report = List.length (static_race_keys report)

let config ~nranks ~nthreads seed =
  {
    Interp.Sim.nranks;
    default_nthreads = nthreads;
    schedule = `Random seed;
    max_steps = 500_000;
    entry = "main";
    record_trace = false;
    thread_level = Mpisim.Thread_level.Multiple;
  }

(* Observed dynamic races over several seeded schedules, as (var, site,
   site) keys (sites already ordered by the oracle). *)
let dynamic_race_keys ?(nranks = 2) ?(nthreads = 2) ?(seeds = 5) program =
  List.concat_map
    (fun seed ->
      let oracle = Interp.Raceck.create () in
      let (_ : Interp.Sim.result) =
        Interp.Sim.run ~config:(config ~nranks ~nthreads seed) ~race:oracle
          program
      in
      List.map
        (fun (r : Interp.Raceck.race) ->
          (r.Interp.Raceck.rc_var, r.Interp.Raceck.rc_site1,
           r.Interp.Raceck.rc_site2))
        (Interp.Raceck.races oracle))
    (List.init seeds (fun i -> i))

let key_str (v, s1, s2) = Printf.sprintf "%s@{%s,%s}" v s1 s2

let check_dynamic_covered program =
  let static = static_race_keys (analyze_races program) in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "dynamic race %s statically reported" (key_str key))
        true (List.mem key static))
    (dynamic_race_keys program)

(* ------------------------------------------------------------------ *)
(* The MHP relation on parallelism words                               *)
(* ------------------------------------------------------------------ *)

let mhp_tests =
  let open Pword in
  let check name expected got = Alcotest.(check bool) name expected got in
  [
    Alcotest.test_case "word-level MHP rules" `Quick (fun () ->
        (* Multithreaded common context: everything below is concurrent. *)
        check "P vs P·S" true (Races.mhp ~phase_blind:false [ P 0 ] [ P 0; S 1 ]);
        check "P·S1 vs P·S2" true
          (Races.mhp ~phase_blind:false [ P 0; S 1 ] [ P 0; S 2 ]);
        (* Same single-like region: serialized (one thread claims it). *)
        check "P·S1 vs P·S1" false
          (Races.mhp ~phase_blind:false [ P 0; S 1 ] [ P 0; S 1 ]);
        (* Distinct barrier phases of the innermost common context are
           ordered — unless the phase counts are unreliable (loop through
           a barrier). *)
        check "P vs P·B" false (Races.mhp ~phase_blind:false [ P 0 ] [ P 0; B ]);
        check "P vs P·B (loopy)" true
          (Races.mhp ~phase_blind:true [ P 0 ] [ P 0; B ]);
        check "P·B·S1 vs P·B·S2" true
          (Races.mhp ~phase_blind:false [ P 0; B; S 1 ] [ P 0; B; S 2 ]);
        (* Monothreaded common context serialises non-single residue. *)
        check "S1·x vs S1·y" false
          (Races.mhp ~phase_blind:false [ S 1 ] [ S 1 ]);
        check "self P" true (Races.self_mhp [ P 0 ]);
        check "self P·S" false (Races.self_mhp [ P 0; S 1 ]);
        check "self empty" false (Races.self_mhp []))
  ]

(* ------------------------------------------------------------------ *)
(* Static pass on concrete programs                                    *)
(* ------------------------------------------------------------------ *)

let racy_counter = "../examples/programs/racy_counter.hml"

let racy_flag = "../examples/programs/racy_flag.hml"

let static_tests =
  [
    Alcotest.test_case "unsynchronised shared counter is flagged" `Quick
      (fun () ->
        let program = Minilang.Parser.parse_file racy_counter in
        let report = analyze_races program in
        Alcotest.(check bool) "has race warning" true
          (race_warning_count report >= 1);
        let feeds =
          List.exists
            (fun (w : Warning.t) ->
              match w.Warning.kind with
              | Warning.Data_race { var; feeds_collective; _ } ->
                  var = "count" && feeds_collective
              | _ -> false)
            (Driver.all_warnings report)
        in
        Alcotest.(check bool) "feeds the allreduce" true feeds);
    Alcotest.test_case "nowait single flag read is flagged, post-barrier isn't"
      `Quick (fun () ->
        let program = Minilang.Parser.parse_file racy_flag in
        let report = analyze_races program in
        let keys = static_race_keys report in
        Alcotest.(check bool) "write/read race on flag" true
          (List.exists (fun (v, _, _) -> v = "flag") keys);
        (* The read after the explicit barrier (line 18) is ordered. *)
        Alcotest.(check bool) "post-barrier read not flagged" true
          (List.for_all
             (fun (_, s1, s2) ->
               let after_barrier s =
                 Test_json.contains s ":18:" || Test_json.contains s ":21:"
               in
               (not (after_barrier s1)) && not (after_barrier s2))
             keys));
    Alcotest.test_case "critical-protected counter is clean" `Quick (fun () ->
        let program =
          parse
            {|func main() {
                var c = 0;
                pragma omp parallel num_threads(2) {
                  pragma omp critical { c = c + 1; }
                }
                print(c);
              }|}
        in
        Alcotest.(check int) "no race warnings" 0
          (race_warning_count (analyze_races program)));
    Alcotest.test_case "one-sided critical still races" `Quick (fun () ->
        let program =
          parse
            {|func main() {
                var c = 0;
                pragma omp parallel num_threads(2) {
                  pragma omp critical { c = c + 1; }
                  compute(c);
                }
              }|}
        in
        Alcotest.(check bool) "race reported" true
          (race_warning_count (analyze_races program) >= 1));
    Alcotest.test_case "distinct critical names do not protect" `Quick
      (fun () ->
        let program =
          parse
            {|func main() {
                var c = 0;
                pragma omp parallel num_threads(2) {
                  pragma omp single nowait {
                    pragma omp critical(a) { c = c + 1; }
                  }
                  pragma omp single {
                    pragma omp critical(b) { c = c + 1; }
                  }
                }
              }|}
        in
        Alcotest.(check bool) "race reported" true
          (race_warning_count (analyze_races program) >= 1));
    Alcotest.test_case "private (inner) declarations do not race" `Quick
      (fun () ->
        let program =
          parse
            {|func main() {
                pragma omp parallel num_threads(4) {
                  var t = omp_tid();
                  t = t + 1;
                  compute(t);
                }
              }|}
        in
        Alcotest.(check int) "no race warnings" 0
          (race_warning_count (analyze_races program)));
    Alcotest.test_case "barrier separates write and read" `Quick (fun () ->
        let program =
          parse
            {|func main() {
                var x = 0;
                pragma omp parallel num_threads(2) {
                  pragma omp single nowait { x = 1; }
                  pragma omp barrier;
                  compute(x);
                }
              }|}
        in
        Alcotest.(check int) "no race warnings" 0
          (race_warning_count (analyze_races program)));
    Alcotest.test_case "clean benchsuite programs have zero race warnings"
      `Quick (fun () ->
        List.iter
          (fun (e : Benchsuite.Catalog.entry) ->
            let program = e.Benchsuite.Catalog.generate_small () in
            Alcotest.(check int)
              (e.Benchsuite.Catalog.name ^ " race warnings")
              0
              (race_warning_count (analyze_races program)))
          Benchsuite.Catalog.all);
    Alcotest.test_case "race pass off by default" `Quick (fun () ->
        let program = Minilang.Parser.parse_file racy_counter in
        Alcotest.(check int) "no race warnings without --races" 0
          (race_warning_count (Driver.analyze program)));
    Alcotest.test_case "json report round-trips the race warning" `Quick
      (fun () ->
        let program = Minilang.Parser.parse_file racy_counter in
        let js = Json_report.to_string (analyze_races program) in
        Alcotest.(check bool) "well-formed" true (Test_json.json_well_formed js);
        Alcotest.(check bool) "has race fields" true
          (Test_json.contains js "data race"
          && Test_json.contains js "\"variable\":\"count\""
          && Test_json.contains js "\"accesses\":"
          && Test_json.contains js "\"feeds_collective\":true"
          && Test_json.contains js "\"advice\":"
          && Test_json.contains js "\"race_pairs\":"));
  ]

(* ------------------------------------------------------------------ *)
(* Dynamic oracle                                                      *)
(* ------------------------------------------------------------------ *)

let dynamic_tests =
  [
    Alcotest.test_case "oracle observes the counter race (every schedule)"
      `Quick (fun () ->
        let program = Minilang.Parser.parse_file racy_counter in
        let keys = dynamic_race_keys ~nthreads:4 ~seeds:3 program in
        Alcotest.(check bool) "counter race observed" true
          (List.exists (fun (v, _, _) -> v = "count") keys);
        check_dynamic_covered program);
    Alcotest.test_case "oracle observes the flag race, not the barriered read"
      `Quick (fun () ->
        let program = Minilang.Parser.parse_file racy_flag in
        let keys = dynamic_race_keys ~seeds:3 program in
        Alcotest.(check bool) "flag race observed" true
          (List.exists (fun (v, _, _) -> v = "flag") keys);
        check_dynamic_covered program);
    Alcotest.test_case "oracle is silent on the critical-protected counter"
      `Quick (fun () ->
        let program =
          parse
            {|func main() {
                var c = 0;
                pragma omp parallel num_threads(4) {
                  pragma omp critical { c = c + 1; }
                }
                print(c);
              }|}
        in
        Alcotest.(check int) "no dynamic races" 0
          (List.length (dynamic_race_keys ~nthreads:4 program)));
    Alcotest.test_case "oracle is silent across a barrier" `Quick (fun () ->
        let program =
          parse
            {|func main() {
                var x = 0;
                pragma omp parallel num_threads(2) {
                  pragma omp single nowait { x = 1; }
                  pragma omp barrier;
                  compute(x);
                }
              }|}
        in
        Alcotest.(check int) "no dynamic races" 0
          (List.length (dynamic_race_keys program)));
    Alcotest.test_case "oracle is silent on clean benchsuite programs" `Quick
      (fun () ->
        List.iter
          (fun (e : Benchsuite.Catalog.entry) ->
            let program = e.Benchsuite.Catalog.generate_small () in
            Alcotest.(check int)
              (e.Benchsuite.Catalog.name ^ " dynamic races")
              0
              (List.length (dynamic_race_keys ~seeds:2 program)))
          Benchsuite.Catalog.all);
  ]

(* ------------------------------------------------------------------ *)
(* Differential property: dynamic ⊆ static                              *)
(* ------------------------------------------------------------------ *)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "every dynamically observed race is statically reported (racy \
            generator)"
         ~count:40 Test_qcheck.arb_racy_program
         (fun p ->
           let static = static_race_keys (analyze_races p) in
           List.for_all
             (fun key -> List.mem key static)
             (dynamic_race_keys ~seeds:3 p)));
  ]

let suite =
  [
    ("races.mhp", mhp_tests);
    ("races.static", static_tests);
    ("races.dynamic", dynamic_tests);
    ("races.qcheck", qcheck_tests);
  ]
