(** Tests for the nonblocking request-lifecycle pass ({!Parcoach.Requests})
    and its dynamic oracle (the lifecycle checker of {!Interp.Sim}).

    Mirrors the race-pass suite: the static pass over-approximates, so on
    randomly generated split-phase programs {e every} lifecycle violation
    the simulator observes (leak, double completion, stale buffer read)
    must be covered by a static warning of the matching class — while the
    clean benchsuite must produce zero request warnings. *)

open Parcoach

let parse src = Minilang.Parser.parse_string ~file:"test" src

let request_options =
  { Driver.default_options with Driver.requests = true; taint_filter = true }

let analyze ?(options = request_options) program =
  Driver.analyze ~options program

let request_classes =
  [ "request leak"; "double wait"; "use before completion";
    "completion mismatch" ]

let class_counts report =
  List.filter
    (fun (cls, _) -> List.mem cls request_classes)
    (Driver.warnings_by_class report)

let count_class report cls =
  Option.value ~default:0 (List.assoc_opt cls (class_counts report))

(* ------------------------------------------------------------------ *)
(* Static pass on concrete programs                                    *)
(* ------------------------------------------------------------------ *)

let static_tests =
  [
    Alcotest.test_case "path-dependent leak and divergent completion" `Quick
      (fun () ->
        let program =
          parse
            {|func main() {
               r = MPI_Ibarrier();
               if (rank() == 0) {
                 MPI_Wait(r);
               }
             }|}
        in
        let report = analyze program in
        Alcotest.(check int) "leak" 1 (count_class report "request leak");
        Alcotest.(check int) "completion mismatch" 1
          (count_class report "completion mismatch"));
    Alcotest.test_case "double wait and stale buffer read" `Quick (fun () ->
        let program =
          parse
            {|func main() {
               var x = 0;
               r = MPI_Iallreduce(x, 1, sum);
               print(x);
               MPI_Wait(r);
               MPI_Wait(r);
             }|}
        in
        let report = analyze program in
        Alcotest.(check int) "double wait" 1 (count_class report "double wait");
        Alcotest.(check int) "stale read" 1
          (count_class report "use before completion"));
    Alcotest.test_case "clean split-phase program has no warnings" `Quick
      (fun () ->
        let program =
          parse
            {|func main() {
               var x = 0;
               r = MPI_Iallreduce(x, 1, sum);
               compute(1);
               MPI_Wait(r);
               print(x);
             }|}
        in
        Alcotest.(check int) "no warnings" 0
          (Driver.warning_count (analyze program)));
    Alcotest.test_case "test-based completion keeps the request live" `Quick
      (fun () ->
        (* MPI_Test may not complete: the may-analysis keeps the request
           in flight, so relying on a single test is flagged as a leak. *)
        let program =
          parse
            {|func main() {
               r = MPI_Ibarrier();
               t = MPI_Test(r);
             }|}
        in
        let report = analyze program in
        Alcotest.(check bool) "leak reported" true
          (count_class report "request leak" >= 1));
    Alcotest.test_case "warnings flow through the JSON report" `Quick
      (fun () ->
        let program =
          parse
            {|func main() {
               var x = 0;
               r = MPI_Irecv(x, 1, 0);
               print(x);
               MPI_Wait(r);
               MPI_Wait(r);
               s = MPI_Ibarrier();
               if (rank() == 0) { MPI_Wait(s); }
             }|}
        in
        let report = analyze program in
        let json = Json_report.to_string ~issues:[] report in
        List.iter
          (fun cls ->
            Alcotest.(check bool) (cls ^ " present in JSON") true
              (count_class report cls >= 1);
            let quoted = Printf.sprintf "%S" cls in
            let contains s sub =
              let n = String.length sub in
              let rec go i =
                i + n <= String.length s
                && (String.equal (String.sub s i n) sub || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) (cls ^ " named in JSON") true
              (contains json quoted))
          request_classes);
  ]

(* ------------------------------------------------------------------ *)
(* Clean benchsuite: zero request warnings                             *)
(* ------------------------------------------------------------------ *)

let clean_tests =
  [
    Alcotest.test_case "catalog has zero request warnings" `Quick (fun () ->
        List.iter
          (fun (e : Benchsuite.Catalog.entry) ->
            let report = analyze (e.Benchsuite.Catalog.generate_small ()) in
            Alcotest.(check (list (pair string int)))
              (e.Benchsuite.Catalog.name ^ " request warnings")
              [] (class_counts report))
          Benchsuite.Catalog.all);
  ]

(* ------------------------------------------------------------------ *)
(* Dynamic oracle                                                      *)
(* ------------------------------------------------------------------ *)

let config ?(nranks = 2) seed =
  {
    Interp.Sim.nranks;
    default_nthreads = 2;
    schedule = `Random seed;
    max_steps = 500_000;
    entry = "main";
    record_trace = false;
    thread_level = Mpisim.Thread_level.Multiple;
  }

(* Observed lifecycle violations over several seeded schedules, as
   (class, site) keys: the site is the start site for leaks and the
   faulting wait/read site otherwise, matching the loc the static
   warning of that class carries. *)
let dynamic_keys ?(nranks = 2) ?(seeds = 5) program =
  List.sort_uniq compare
    (List.concat_map
       (fun seed ->
         let result = Interp.Sim.run ~config:(config ~nranks seed) program in
         List.map
           (function
             | Interp.Sim.Leaked_request { site; _ } -> ("request leak", site)
             | Interp.Sim.Double_wait { site; _ } -> ("double wait", site)
             | Interp.Sim.Stale_read { site; _ } ->
                 ("use before completion", site))
           result.Interp.Sim.lifecycle)
       (List.init seeds (fun i -> i)))

(* Static coverage of a dynamic key: a warning of the same class whose
   loc (or, for leaks, one of whose start sites) is the observed site. *)
let statically_covered report (cls, site) =
  List.exists
    (fun (w : Warning.t) ->
      String.equal (Warning.class_of w.Warning.kind) cls
      &&
      match w.Warning.kind with
      | Warning.Request_leak { started; _ } ->
          List.exists
            (fun l -> String.equal (Minilang.Loc.to_string l) site)
            started
      | _ -> String.equal (Minilang.Loc.to_string w.Warning.loc) site)
    (Driver.all_warnings report)

let check_dynamic_covered program =
  let report = analyze program in
  List.iter
    (fun (cls, site) ->
      Alcotest.(check bool)
        (Printf.sprintf "dynamic %s at %s statically reported" cls site)
        true
        (statically_covered report (cls, site)))
    (dynamic_keys program)

let dynamic_tests =
  [
    Alcotest.test_case "leak observed on non-waiting ranks" `Quick (fun () ->
        let program =
          parse
            {|func main() {
               r = MPI_Ibarrier();
               if (rank() == 0) {
                 MPI_Wait(r);
               }
             }|}
        in
        let keys = dynamic_keys ~nranks:3 ~seeds:2 program in
        Alcotest.(check bool) "leak observed" true
          (List.exists (fun (cls, _) -> String.equal cls "request leak") keys);
        check_dynamic_covered program);
    Alcotest.test_case "stale read and double wait observed" `Quick (fun () ->
        let program =
          parse
            {|func main() {
               var x = 0;
               r = MPI_Iallreduce(x, 1, sum);
               print(x);
               MPI_Wait(r);
               MPI_Wait(r);
             }|}
        in
        let keys = dynamic_keys ~seeds:2 program in
        Alcotest.(check bool) "stale read observed" true
          (List.exists
             (fun (cls, _) -> String.equal cls "use before completion")
             keys);
        Alcotest.(check bool) "double wait observed" true
          (List.exists (fun (cls, _) -> String.equal cls "double wait") keys);
        check_dynamic_covered program);
    Alcotest.test_case "clean split-phase run has no violations" `Quick
      (fun () ->
        let program =
          parse
            {|func main() {
               var x = 0;
               r = MPI_Iallreduce(x, 1, sum);
               compute(1);
               MPI_Wait(r);
               print(x);
               s = MPI_Isend(x, (rank() + 1) % size(), 3);
               y = MPI_Irecv(x, (rank() + size() - 1) % size(), 3);
               MPI_Wait(s);
               MPI_Wait(y);
             }|}
        in
        let result = Interp.Sim.run ~config:(config 7) program in
        Alcotest.(check bool) "finishes" true (Interp.Sim.is_finished result);
        Alcotest.(check int) "no violations" 0
          (List.length result.Interp.Sim.lifecycle));
    Alcotest.test_case "clean catalog runs have no violations" `Quick
      (fun () ->
        List.iter
          (fun (e : Benchsuite.Catalog.entry) ->
            let program = e.Benchsuite.Catalog.generate_small () in
            let result = Interp.Sim.run ~config:(config ~nranks:2 3) program in
            Alcotest.(check int)
              (e.Benchsuite.Catalog.name ^ " lifecycle violations")
              0
              (List.length result.Interp.Sim.lifecycle))
          Benchsuite.Catalog.all);
  ]

(* ------------------------------------------------------------------ *)
(* Wait as a happens-before edge in the race pass                      *)
(* ------------------------------------------------------------------ *)

let hb_tests =
  [
    Alcotest.test_case "wait discharges the completion-write race" `Quick
      (fun () ->
        (* The Iallreduce completion write to [x] is attributed to the
           start site; the read of [x] outside the master region may
           happen in parallel with it by pword.  The requests pass proves
           the request is no longer in flight at the read, so the pair is
           discharged — without it the race pass must flag it. *)
        let program =
          parse
            {|func main() {
               var x = 0;
               pragma omp parallel num_threads(2) {
                 pragma omp master {
                   r = MPI_Iallreduce(x, 1, sum);
                   MPI_Wait(r);
                 }
                 compute(x);
               }
             }|}
        in
        let races_only =
          { Driver.default_options with Driver.races = true }
        in
        let both =
          { Driver.default_options with Driver.races = true; requests = true }
        in
        let race_count options =
          List.length
            (List.filter
               (fun (w : Warning.t) ->
                 match w.Warning.kind with
                 | Warning.Data_race { var; _ } -> String.equal var "x"
                 | _ -> false)
               (Driver.all_warnings (Driver.analyze ~options program)))
        in
        Alcotest.(check bool) "flagged without the requests pass" true
          (race_count races_only >= 1);
        Alcotest.(check int) "discharged with the requests pass" 0
          (race_count both);
        let report = Driver.analyze ~options:both program in
        let fr = List.hd report.Driver.funcs in
        match fr.Driver.races with
        | Some r ->
            Alcotest.(check bool) "wait_filtered counted" true
              (r.Races.wait_filtered >= 1)
        | None -> Alcotest.fail "races result missing");
  ]

(* ------------------------------------------------------------------ *)
(* Differential property: dynamic ⊆ static                             *)
(* ------------------------------------------------------------------ *)

(* Split-phase programs that are deliberately lifecycle-buggy: each
   fragment starts a request and then leaks it, completes it on a
   rank-dependent path only, waits twice, or touches the buffer while in
   flight — plus clean fragments so coverage is not vacuous. *)
let gen_request_program : Minilang.Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let open Minilang in
  let mk = Ast.mk ~loc:Loc.none in
  let fragment k =
    let r = Printf.sprintf "r%d" k in
    let buf = Printf.sprintf "b%d" k in
    let start =
      oneofl
        [
          `Ibarrier;
          `Iallreduce;
          `Irecv;
          `Isend;
        ]
    in
    let istart_of = function
      | `Ibarrier -> Builder.ibarrier r
      | `Iallreduce ->
          Builder.(iallreduce r ~target:buf ~op:Ast.Rsum (v buf))
      | `Irecv ->
          Builder.(
            irecv r ~target:buf
              ~src:((rank +: size -: i 1) %: size)
              ~tag:(i k) ())
      | `Isend ->
          Builder.(isend r ~dest:((rank +: i 1) %: size) ~tag:(i k) (v buf))
    in
    (* Isend must pair with a matching Irecv or the waits block forever;
       emit the partner eagerly so only the lifecycle can go wrong. *)
    let partner = function
      | `Isend ->
          [
            Builder.(
              send
                ~dest:((rank +: i 1) %: size)
                ~tag:(i (100 + k))
                (i 0));
            Builder.(
              recv ~target:buf
                ~src:((rank +: size -: i 1) %: size)
                ~tag:(i (100 + k)) ());
          ]
      | `Irecv ->
          [
            Builder.(
              send ~dest:((rank +: i 1) %: size) ~tag:(i k) (v buf));
          ]
      | _ -> []
    in
    map2
      (fun op shape ->
        let sstart = istart_of op in
        let before = partner op in
        let wait = Builder.wait r in
        let touch = mk (Ast.Print (Ast.Var buf)) in
        let body =
          match shape with
          | 0 -> [ sstart; wait ] (* clean *)
          | 1 -> [ sstart ] (* leak on every path *)
          | 2 ->
              (* completed on one rank only: leak + completion mismatch *)
              [
                sstart;
                mk
                  (Ast.If
                     ( Ast.Binop (Ast.Eq, Ast.Rank, Ast.Int 0),
                       [ wait ],
                       [] ));
              ]
          | 3 -> [ sstart; wait; Builder.wait r ] (* double wait *)
          | 4 -> [ sstart; touch; wait ] (* stale buffer read *)
          | _ -> [ sstart; mk (Ast.Compute (Ast.Int 1)); wait ]
        in
        before @ body)
      start (int_bound 5)
  in
  map
    (fun frags ->
      let nfrags = List.length frags in
      let decls =
        List.init nfrags (fun k ->
            mk (Ast.Decl (Printf.sprintf "b%d" k, Ast.Int 0)))
      in
      Builder.number_lines
        {
          Ast.funcs =
            [
              {
                Ast.fname = "main";
                params = [];
                body = decls @ List.concat frags;
                floc = Loc.none;
              };
            ];
        })
    (let* n = int_range 1 3 in
     flatten_l (List.init n fragment))

let arb_request_program =
  QCheck.make ~print:Minilang.Pretty.program_to_string gen_request_program

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "every dynamically observed lifecycle violation is statically \
            reported (split-phase generator)"
         ~count:40 arb_request_program
         (fun p ->
           let report = analyze p in
           List.for_all
             (statically_covered report)
             (dynamic_keys ~seeds:3 p)));
  ]

let suite =
  [
    ("requests.static", static_tests);
    ("requests.clean", clean_tests);
    ("requests.dynamic", dynamic_tests);
    ("requests.hb", hb_tests);
    ("requests.qcheck", qcheck_tests);
  ]
