(** Tests for the [parcoachd] serve layer: the JSON codec, the source
    chunker, the content-hashed summary keys, warm/cold report identity
    through the daemon, the worker pool, and [Driver.analyze ?reuse]. *)

open Minilang
module Gen = QCheck.Gen

let serve_options =
  {
    Parcoach.Driver.default_options with
    Parcoach.Driver.taint_filter = true;
    interprocedural = true;
    races = true;
  }

(* A small interprocedural program used by the cache-key tests: [main]
   calls [helper], [helper] calls [leaf]; [loner] is unrelated. *)
let base_source =
  "func leaf() {\n\
  \  MPI_Barrier();\n\
   }\n\
   func helper() {\n\
  \  leaf();\n\
   }\n\
   func loner() {\n\
  \  var t = 1;\n\
  \  t = MPI_Allreduce(t, sum);\n\
   }\n\
   func main() {\n\
  \  helper();\n\
  \  MPI_Barrier();\n\
   }\n"

let parse source = Parser.parse_string ~file:"test.hml" source

(* First-occurrence substring replacement (enough for these tests; no
   regexp library needed). *)
let replace ~sub ~by s =
  let rec find i =
    if i + String.length sub > String.length s then
      Alcotest.failf "replace: %s not found" sub
    else if String.equal (String.sub s i (String.length sub)) sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by
  ^ String.sub s
      (i + String.length sub)
      (String.length s - i - String.length sub)

let keys_of source =
  List.map
    (fun (f, k) -> (f.Ast.fname, k))
    (Serve.Hash.keys ~options:serve_options (parse source))

let key tbl name =
  match List.assoc_opt name tbl with
  | Some k -> k
  | None -> Alcotest.failf "no key for %s" name

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let rec json_equal a b =
  match (a, b) with
  | Serve.Json.Null, Serve.Json.Null -> true
  | Serve.Json.Bool x, Serve.Json.Bool y -> x = y
  | Serve.Json.Int x, Serve.Json.Int y -> x = y
  | Serve.Json.Float x, Serve.Json.Float y -> x = y
  | Serve.Json.Str x, Serve.Json.Str y -> String.equal x y
  | Serve.Json.List x, Serve.Json.List y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Serve.Json.Obj x, Serve.Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && json_equal va vb)
           x y
  | _ -> false

let test_json_roundtrip () =
  let v =
    Serve.Json.Obj
      [
        ("id", Serve.Json.Int 7);
        ("pi", Serve.Json.Float 3.5);
        ("name", Serve.Json.Str "a \"quoted\"\n\tstring \\ with\rescapes");
        ("flag", Serve.Json.Bool true);
        ("nothing", Serve.Json.Null);
        ( "items",
          Serve.Json.List
            [ Serve.Json.Int 1; Serve.Json.Str ""; Serve.Json.Bool false ] );
        ("empty_obj", Serve.Json.Obj []);
        ("empty_list", Serve.Json.List []);
      ]
  in
  match Serve.Json.parse (Serve.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (json_equal v v')
  | Error msg -> Alcotest.failf "round trip failed: %s" msg

let test_json_unicode () =
  match Serve.Json.parse {|{"s":"café ✓"}|} with
  | Ok v ->
      Alcotest.(check (option string))
        "utf8 decoding"
        (Some "caf\xc3\xa9 \xe2\x9c\x93")
        (Option.bind (Serve.Json.member "s" v) Serve.Json.to_str)
  | Error msg -> Alcotest.failf "unicode parse failed: %s" msg

let test_json_errors () =
  let bad s =
    match Serve.Json.parse s with
    | Ok _ -> Alcotest.failf "expected parse error for %s" s
    | Error _ -> ()
  in
  bad "{\"a\":1} trailing";
  bad "{\"a\":}";
  bad "\"unterminated";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "nul"

let test_json_raw_splice () =
  let v =
    Serve.Json.Obj
      [ ("ok", Serve.Json.Bool true); ("report", Serve.Json.Raw {|{"n":1}|}) ]
  in
  Alcotest.(check string)
    "raw spliced verbatim" {|{"ok":true,"report":{"n":1}}|}
    (Serve.Json.to_string v)

(* ------------------------------------------------------------------ *)
(* Chunker                                                             *)
(* ------------------------------------------------------------------ *)

let locs_of_program (p : Ast.program) =
  List.concat_map
    (fun f -> f.Ast.floc :: List.map (fun s -> s.Ast.sloc) (Ast.stmts_of_func f))
    p.Ast.funcs

let chunked_parse ~file source =
  match Serve.Chunker.split source with
  | { Serve.Chunker.clean = false; _ } -> None
  | { Serve.Chunker.chunks; _ } ->
      Some
        {
          Ast.funcs =
            List.map
              (fun (c : Serve.Chunker.chunk) ->
                match (Parser.parse_string ~file:"" c.Serve.Chunker.text).Ast.funcs with
                | [ f ] ->
                    Serve.Chunker.shift_func ~file ~line:c.Serve.Chunker.line
                      ~col:c.Serve.Chunker.col f
                | _ -> Alcotest.fail "chunk is not a single function")
              chunks;
        }

let check_chunked_equals_direct source =
  let direct = parse source in
  match chunked_parse ~file:"test.hml" source with
  | None -> Alcotest.fail "splitter rejected a clean source"
  | Some via_chunks ->
      Alcotest.(check bool)
        "chunked parse structurally equal" true
        (Ast.equal_program direct via_chunks);
      Alcotest.(check bool)
        "chunked parse locations equal" true
        (List.for_all2 Loc.equal (locs_of_program direct)
           (locs_of_program via_chunks))

let test_chunker_equals_direct () =
  check_chunked_equals_direct base_source;
  (* Comments (with a decoy 'func' keyword), blank lines, and a closing
     brace sharing a line with the next function's keyword. *)
  check_chunked_equals_direct
    "// leading comment, func decoy\n\n\
     func one() {\n\
  \  /* block comment { with braces } and func decoy */\n\
  \  MPI_Barrier();\n\
     }\n\n\
     func two() { MPI_Barrier(); }\n\
     func three() {\n\
  \  two();\n\
     }\n"

let test_chunker_fallback () =
  let unclean source =
    let { Serve.Chunker.clean; _ } = Serve.Chunker.split source in
    Alcotest.(check bool) (Printf.sprintf "unclean: %s" source) false clean
  in
  unclean "garbage func main() { }";
  unclean "func broken() {";
  unclean "func broken() { } }";
  unclean "func c() { } /* unterminated";
  unclean ""

let prop_chunker_roundtrip =
  QCheck.Test.make ~name:"chunked parse = direct parse (incl. locations)"
    ~count:40 Test_qcheck.arb_program (fun p ->
      let source = Pretty.program_to_string p in
      let direct = parse source in
      match chunked_parse ~file:"test.hml" source with
      | None -> false
      | Some via_chunks ->
          Ast.equal_program direct via_chunks
          && List.for_all2 Loc.equal (locs_of_program direct)
               (locs_of_program via_chunks))

(* ------------------------------------------------------------------ *)
(* Summary-cache keys                                                  *)
(* ------------------------------------------------------------------ *)

let test_keys_ignore_layout () =
  let base = keys_of base_source in
  (* Inserting comments and blank lines shifts every location but no
     key. *)
  let commented =
    "// a new leading comment\n\n"
    ^ String.concat "\n// mid comment\n"
        [ base_source; "func extra_unused() {\n  MPI_Barrier();\n}\n" ]
  in
  let shifted = keys_of commented in
  List.iter
    (fun (name, k) ->
      Alcotest.(check string) (name ^ " key unchanged") k (key shifted name))
    base

let test_keys_ignore_unrelated () =
  let base = keys_of base_source in
  (* Renaming [loner] (referenced by nobody) leaves the other keys
     alone. *)
  let renamed = replace ~sub:"loner" ~by:"renamed_loner" base_source in
  let renamed_keys = keys_of renamed in
  List.iter
    (fun name ->
      Alcotest.(check string)
        (name ^ " key survives unrelated rename")
        (key base name) (key renamed_keys name))
    [ "leaf"; "helper"; "main" ];
  (* Reordering functions changes no key. *)
  let p = parse base_source in
  let reordered =
    Pretty.program_to_string { Ast.funcs = List.rev p.Ast.funcs }
  in
  let reordered_keys = keys_of reordered in
  List.iter
    (fun (name, k) ->
      Alcotest.(check string) (name ^ " key survives reorder") k
        (key reordered_keys name))
    base

let test_keys_track_bodies () =
  let base = keys_of base_source in
  (* Editing [leaf]'s body invalidates leaf and its transitive callers
     (helper, main) but not the unrelated [loner]. *)
  let edited =
    replace
      ~sub:"func leaf() {\n  MPI_Barrier();\n}"
      ~by:"func leaf() {\n  MPI_Barrier();\n  MPI_Barrier();\n}" base_source
  in
  let edited_keys = keys_of edited in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " key invalidated by callee edit")
        false
        (String.equal (key base name) (key edited_keys name)))
    [ "leaf"; "helper"; "main" ];
  Alcotest.(check string)
    "loner key untouched by leaf edit" (key base "loner")
    (key edited_keys "loner");
  (* Different analysis options give different keys for every function. *)
  let other_options =
    List.map
      (fun (f, k) -> (f.Ast.fname, k))
      (Serve.Hash.keys ~options:Parcoach.Driver.default_options
         (parse base_source))
  in
  List.iter
    (fun (name, k) ->
      Alcotest.(check bool)
        (name ^ " key depends on options")
        false
        (String.equal k (key other_options name)))
    base

let prop_keys_location_insensitive =
  QCheck.Test.make ~name:"summary keys ignore locations" ~count:40
    Test_qcheck.arb_program (fun p ->
      let reparsed = parse (Pretty.program_to_string p) in
      List.for_all2
        (fun (a, ka) (b, kb) ->
          String.equal a.Ast.fname b.Ast.fname && String.equal ka kb)
        (Serve.Hash.keys ~options:serve_options p)
        (Serve.Hash.keys ~options:serve_options reparsed))

(* ------------------------------------------------------------------ *)
(* Daemon: warm = cold, incrementality, relocation                     *)
(* ------------------------------------------------------------------ *)

let analysis_exn label = function
  | Ok (a : Serve.Daemon.analysis) -> a
  | Error _ -> Alcotest.failf "%s: analysis failed validation" label

let cold_json source =
  Parcoach.Json_report.to_string
    (Parcoach.Driver.analyze ~options:serve_options ~jobs:1
       (Parser.parse_string ~file:"warm.hml" source))

let test_daemon_warm_identity () =
  let daemon = Serve.Daemon.create () in
  let seed =
    analysis_exn "seed"
      (Serve.Daemon.analyze_source daemon ~options:serve_options ~jobs:1
         ~file:"warm.hml" base_source)
  in
  Alcotest.(check int) "cold request analyses everything" 0
    seed.Serve.Daemon.reused;
  (* A leading comment shifts every line; the [main] edit re-analyses
     exactly one function; cached summaries must be relocated so the
     merged report is byte-identical to a cold analysis. *)
  let edited =
    "// shift every line down\n"
    ^ replace
        ~sub:"func main() {\n  helper();"
        ~by:"func main() {\n  var fresh = 3;\n  helper();" base_source
  in
  let warm =
    analysis_exn "warm"
      (Serve.Daemon.analyze_source daemon ~options:serve_options ~jobs:1
         ~file:"warm.hml" edited)
  in
  Alcotest.(check int) "one function re-analysed" 1 warm.Serve.Daemon.analysed;
  Alcotest.(check int) "three summaries reused" 3 warm.Serve.Daemon.reused;
  Alcotest.(check string)
    "warm report byte-identical to cold"
    (cold_json edited)
    (Parcoach.Json_report.to_string warm.Serve.Daemon.report);
  (* Re-sending the same source must hit the whole-source AST cache and
     still produce the identical report. *)
  let again =
    analysis_exn "again"
      (Serve.Daemon.analyze_source daemon ~options:serve_options ~jobs:1
         ~file:"warm.hml" edited)
  in
  Alcotest.(check string)
    "replayed report identical"
    (cold_json edited)
    (Parcoach.Json_report.to_string again.Serve.Daemon.report)

let test_daemon_invalid_source () =
  let daemon = Serve.Daemon.create () in
  (match
     Serve.Daemon.analyze_source daemon ~options:serve_options
       "func main() { no_such_function(); }"
   with
  | Ok _ -> Alcotest.fail "undefined call should not validate"
  | Error issues ->
      Alcotest.(check bool) "validation errors reported" false
        (Validate.is_valid issues));
  match Serve.Daemon.analyze_source daemon ~options:serve_options "func main( {" with
  | Ok _ -> Alcotest.fail "syntax error should not analyse"
  | Error issues ->
      Alcotest.(check int) "one parse issue" 1 (List.length issues)

(* Drive [Daemon.serve] through temp files and collect responses keyed by
   request id (responses may arrive out of order with a pool). *)
let run_serve ~pool lines =
  let in_path = Filename.temp_file "parcoachd_test" ".in" in
  let out_path = Filename.temp_file "parcoachd_test" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out in_path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      let ic = open_in in_path in
      let oc = open_out out_path in
      let daemon = Serve.Daemon.create () in
      Serve.Daemon.serve ~pool daemon ic oc;
      close_in ic;
      close_out oc;
      let ic = open_in out_path in
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = read [] in
      close_in ic;
      List.map
        (fun line ->
          match Serve.Json.parse line with
          | Error msg -> Alcotest.failf "bad response %s: %s" line msg
          | Ok v -> (
              match
                Option.bind (Serve.Json.member "id" v) Serve.Json.to_int
              with
              | Some id -> (id, v)
              | None -> Alcotest.failf "response without id: %s" line))
        lines)

let analyze_request id source =
  Serve.Json.to_string
    (Serve.Json.Obj
       [
         ("id", Serve.Json.Int id);
         ("method", Serve.Json.Str "analyze");
         ( "params",
           Serve.Json.Obj
             [
               ("source", Serve.Json.Str source);
               ("file", Serve.Json.Str "pool.hml");
               ("taint_filter", Serve.Json.Bool true);
               ("interprocedural", Serve.Json.Bool true);
               ("races", Serve.Json.Bool true);
               ("jobs", Serve.Json.Int 1);
             ] );
       ])

(* The analysis payload of a response: everything except the cache
   counters and timings, which legitimately depend on scheduling. *)
let payload response =
  let part name =
    match Serve.Json.member name response with
    | Some v -> Serve.Json.to_string v
    | None -> "<absent>"
  in
  String.concat "|" [ part "ok"; part "valid"; part "report"; part "warnings" ]

let test_daemon_pool_deterministic () =
  let edit n =
    replace ~sub:"func main() {"
      ~by:(Printf.sprintf "func main() {\n  var round = %d;\n  compute(round);" n)
      base_source
  in
  let requests = List.init 6 (fun i -> analyze_request i (edit (i mod 3))) in
  let sequential = run_serve ~pool:1 requests in
  let pooled = run_serve ~pool:4 requests in
  Alcotest.(check int) "all requests answered" (List.length requests)
    (List.length pooled);
  List.iter
    (fun (id, seq_response) ->
      match List.assoc_opt id pooled with
      | None -> Alcotest.failf "pooled run lost response %d" id
      | Some pooled_response ->
          Alcotest.(check string)
            (Printf.sprintf "response %d identical under pool" id)
            (payload seq_response) (payload pooled_response))
    sequential

let test_daemon_protocol_errors () =
  let daemon = Serve.Daemon.create () in
  let check_error label line =
    match Serve.Json.parse (Serve.Daemon.handle_line daemon line) with
    | Error msg -> Alcotest.failf "%s: unparsable response: %s" label msg
    | Ok v ->
        Alcotest.(check (option bool))
          label (Some false)
          (Option.bind (Serve.Json.member "ok" v) Serve.Json.to_bool)
  in
  check_error "bad json" "{nope";
  check_error "missing method" {|{"id":1}|};
  check_error "unknown method" {|{"id":1,"method":"frobnicate"}|};
  check_error "missing source" {|{"id":1,"method":"analyze"}|};
  check_error "bad level"
    {|{"id":1,"method":"analyze","params":{"source":"func main() { }","level":"nope"}}|};
  check_error "bad jobs"
    {|{"id":1,"method":"analyze","params":{"source":"func main() { }","jobs":0}}|};
  check_error "unknown warning class in only"
    {|{"id":1,"method":"analyze","params":{"source":"func main() { }","only":"no-such-class"}}|}

(* The requests pass and the warning-class filter, shared with
   [parcoachc --requests] / [--only]. *)
let test_daemon_only_filter () =
  let source =
    "func main() {\n\
    \  r = MPI_Ibarrier();\n\
    \  if (rank() == 0) {\n\
    \    MPI_Wait(r);\n\
    \  }\n\
     }\n"
  in
  let request id only =
    Serve.Json.to_string
      (Serve.Json.Obj
         ([
            ("id", Serve.Json.Int id);
            ("method", Serve.Json.Str "analyze");
          ]
         @ [
             ( "params",
               Serve.Json.Obj
                 ([
                    ("source", Serve.Json.Str source);
                    ("file", Serve.Json.Str "only.hml");
                    ("taint_filter", Serve.Json.Bool true);
                    ("requests", Serve.Json.Bool true);
                  ]
                 @
                 match only with
                 | None -> []
                 | Some classes -> [ ("only", Serve.Json.Str classes) ]) );
           ]))
  in
  let warning_count response =
    match
      Option.bind (Serve.Json.member "warnings" response) Serve.Json.to_int
    with
    | Some n -> n
    | None -> Alcotest.failf "response without warning count"
  in
  let responses =
    run_serve ~pool:1
      [
        request 1 None;
        request 2 (Some "request leak");
        request 3 (Some "data race");
      ]
  in
  let get id = List.assoc id responses in
  (* Unfiltered: the leak and the completion mismatch. *)
  Alcotest.(check int) "both warnings unfiltered" 2 (warning_count (get 1));
  Alcotest.(check int) "leak only" 1 (warning_count (get 2));
  Alcotest.(check int) "disjoint class filters everything" 0
    (warning_count (get 3))

(* ------------------------------------------------------------------ *)
(* Driver.analyze ?reuse                                               *)
(* ------------------------------------------------------------------ *)

let test_driver_reuse_identity () =
  let program = parse base_source in
  let cold = Parcoach.Driver.analyze ~options:serve_options ~jobs:1 program in
  let by_name =
    List.map (fun (fr : Parcoach.Driver.func_report) -> (fr.Parcoach.Driver.fname, fr)) cold.Parcoach.Driver.funcs
  in
  let full_reuse (f : Ast.func) = List.assoc_opt f.Ast.fname by_name in
  let partial_reuse (f : Ast.func) =
    if String.equal f.Ast.fname "main" then None
    else List.assoc_opt f.Ast.fname by_name
  in
  List.iter
    (fun (label, reuse) ->
      let merged =
        Parcoach.Driver.analyze ~options:serve_options ~jobs:1 ~reuse program
      in
      Alcotest.(check string)
        (label ^ " merge is byte-identical")
        (Parcoach.Json_report.to_string cold)
        (Parcoach.Json_report.to_string merged))
    [ ("full reuse", full_reuse); ("partial reuse", partial_reuse) ]

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_promise () =
  let p = Serve.Pool.Promise.create () in
  Alcotest.(check bool) "fresh promise unresolved" false
    (Serve.Pool.Promise.is_resolved p);
  Serve.Pool.Promise.resolve p 42;
  Serve.Pool.Promise.resolve p 43;
  Alcotest.(check int) "first resolution wins" 42 (Serve.Pool.Promise.await p);
  let q = Serve.Pool.Promise.create () in
  Serve.Pool.Promise.reject q Exit;
  (match Serve.Pool.Promise.await q with
  | _ -> Alcotest.fail "await should re-raise"
  | exception Exit -> ())

let test_stream () =
  let s = Serve.Pool.Stream.create 4 in
  List.iter (Serve.Pool.Stream.push s) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Serve.Pool.Stream.length s);
  Serve.Pool.Stream.close s;
  (match Serve.Pool.Stream.push s 4 with
  | () -> Alcotest.fail "push after close should fail"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (list (option int)))
    "drained in order then closed"
    [ Some 1; Some 2; Some 3; None ]
    (List.init 4 (fun _ -> Serve.Pool.Stream.pop s))

let test_pool_runs_everything () =
  let pool = Serve.Pool.create ~jobs:4 () in
  let counter = Atomic.make 0 in
  let promises =
    List.init 32 (fun i ->
        Serve.Pool.submit pool (fun () ->
            Atomic.incr counter;
            i * i))
  in
  let results = List.map Serve.Pool.Promise.await promises in
  Serve.Pool.shutdown pool;
  Serve.Pool.shutdown pool;
  Alcotest.(check int) "every job ran" 32 (Atomic.get counter);
  Alcotest.(check (list int))
    "results in submission order"
    (List.init 32 (fun i -> i * i))
    results

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_chunker_roundtrip; prop_keys_location_insensitive ]

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json unicode escapes" `Quick test_json_unicode;
        Alcotest.test_case "json parse errors" `Quick test_json_errors;
        Alcotest.test_case "json raw splice" `Quick test_json_raw_splice;
        Alcotest.test_case "chunker = direct parse" `Quick
          test_chunker_equals_direct;
        Alcotest.test_case "chunker falls back on unclean input" `Quick
          test_chunker_fallback;
        Alcotest.test_case "keys ignore comments and blank lines" `Quick
          test_keys_ignore_layout;
        Alcotest.test_case "keys ignore unrelated functions" `Quick
          test_keys_ignore_unrelated;
        Alcotest.test_case "keys track body and callee edits" `Quick
          test_keys_track_bodies;
        Alcotest.test_case "daemon warm report = cold report" `Quick
          test_daemon_warm_identity;
        Alcotest.test_case "daemon rejects invalid sources" `Quick
          test_daemon_invalid_source;
        Alcotest.test_case "daemon pool = sequential responses" `Quick
          test_daemon_pool_deterministic;
        Alcotest.test_case "daemon warning-class filter" `Quick
          test_daemon_only_filter;
        Alcotest.test_case "daemon protocol errors" `Quick
          test_daemon_protocol_errors;
        Alcotest.test_case "Driver.analyze reuse identity" `Quick
          test_driver_reuse_identity;
        Alcotest.test_case "promise" `Quick test_promise;
        Alcotest.test_case "stream" `Quick test_stream;
        Alcotest.test_case "pool runs every job" `Quick
          test_pool_runs_everything;
      ]
      @ qcheck_tests );
  ]
