(** Tests for the streaming MUST-style overlay checker: byte-identity
    with the post-hoc {!Mustlike.Overlay.check}, shard-count
    determinism, backpressure, and the engine hook. *)

open Mustlike

let ev ?(op = None) ?(root = None) ?(payload = 0) kind site :
    Mpisim.Engine.trace_event =
  { signature = (kind, op, root); payload; event_site = site }

let barrier site = ev Mpisim.Coll.Barrier site

let allreduce site = ev ~op:(Some Mpisim.Op.Sum) Mpisim.Coll.Allreduce site

(* Full-report byte identity: verdict, divergence localization and cost
   metrics all agree. *)
let check_identity ?window ?batch ?shards ~fanout traces =
  let post = Overlay.check ~fanout traces in
  let stream, _ = Stream.check_traces ~fanout ?window ?batch ?shards traces in
  Alcotest.(check string)
    "streaming report = post-hoc report"
    (Overlay.report_to_string post)
    (Overlay.report_to_string stream)

let identity_tests =
  [
    Alcotest.test_case "matching traces: identical reports" `Quick (fun () ->
        let trace = [ barrier "a"; allreduce "b"; barrier "c" ] in
        check_identity ~fanout:2 (Array.make 4 trace));
    Alcotest.test_case "divergence: identical localization" `Quick (fun () ->
        let t1 = [ barrier "a"; allreduce "b" ] in
        let t2 = [ barrier "a"; barrier "bad" ] in
        check_identity ~fanout:2 [| t1; t1; t2; t1 |]);
    Alcotest.test_case "early-ended stream: identical <no event> groups"
      `Quick (fun () ->
        let long = [ barrier "a"; allreduce "b" ] in
        let short = [ barrier "a" ] in
        check_identity ~fanout:2
          (Array.init 8 (fun r -> if r < 4 then long else short)));
    Alcotest.test_case "single rank and empty traces" `Quick (fun () ->
        check_identity ~fanout:2 [| [ barrier "a"; allreduce "b" ] |];
        check_identity ~fanout:2 [| [] |];
        check_identity ~fanout:2 [| []; [] |]);
    Alcotest.test_case "fanout >= nranks (centralized overlay)" `Quick
      (fun () ->
        let trace = [ barrier "a"; barrier "b" ] in
        check_identity ~fanout:8 (Array.make 3 trace));
    Alcotest.test_case "single-event traces" `Quick (fun () ->
        check_identity ~fanout:2 (Array.make 5 [ barrier "a" ]);
        check_identity ~fanout:2
          [| [ barrier "a" ]; [ allreduce "a" ]; [ barrier "a" ] |]);
    Alcotest.test_case "tiny window and batch stress the carry logic" `Quick
      (fun () ->
        let trace = List.init 50 (fun i -> barrier (string_of_int i)) in
        check_identity ~fanout:2 ~window:2 ~batch:1 (Array.make 3 trace);
        let t2 = List.mapi (fun i e -> if i = 37 then allreduce "x" else e) trace in
        check_identity ~fanout:2 ~window:2 ~batch:1 [| trace; t2; trace |]);
    Alcotest.test_case "invalid parameters rejected" `Quick (fun () ->
        let bad f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        bad (fun () -> Stream.create ~fanout:1 ~nranks:4 ());
        bad (fun () -> Stream.create ~window:1 ~nranks:4 ());
        bad (fun () -> Stream.create ~batch:0 ~nranks:4 ());
        bad (fun () -> Stream.create ~nranks:0 ()));
  ]

let determinism_tests =
  [
    Alcotest.test_case "verdict independent of shard count" `Quick (fun () ->
        let t1 = List.init 40 (fun i -> if i mod 3 = 0 then allreduce "s" else barrier "s") in
        let t2 = List.mapi (fun i e -> if i = 29 then barrier "y" else e) t1 in
        let traces = Array.init 9 (fun r -> if r = 7 then t2 else t1) in
        let r1, _ = Stream.check_traces ~fanout:3 ~shards:1 traces in
        let r4, _ = Stream.check_traces ~fanout:3 ~shards:4 traces in
        let r9, _ = Stream.check_traces ~fanout:3 ~shards:9 traces in
        Alcotest.(check string)
          "shards:4 = shards:1"
          (Overlay.report_to_string r1)
          (Overlay.report_to_string r4);
        Alcotest.(check string)
          "shards:9 = shards:1"
          (Overlay.report_to_string r1)
          (Overlay.report_to_string r9));
    Alcotest.test_case "adaptive retuning never changes the verdict" `Quick
      (fun () ->
        let trace = List.init 300 (fun i -> barrier (string_of_int i)) in
        let traces = Array.make 6 trace in
        let fixed, _ = Stream.check_traces ~fanout:2 ~batch:4 traces in
        let adapted, st =
          Stream.check_traces ~fanout:2 ~batch:4 ~adapt:true traces
        in
        Alcotest.(check bool) "both match" true
          (Overlay.is_match fixed && Overlay.is_match adapted);
        Alcotest.(check bool) "same verdict" true
          (fixed.Overlay.verdict = adapted.Overlay.verdict);
        (* The single lockstep producer keeps batches full, so the tree
           must have widened at least once. *)
        Alcotest.(check bool) "retuned" true (st.Stream.retunes >= 1));
  ]

let backpressure_tests =
  [
    Alcotest.test_case "full mailbox blocks the producer without dropping"
      `Quick (fun () ->
        let mb = Serve.Pool.Ring.create 2 in
        Serve.Pool.Ring.push mb 1;
        Serve.Pool.Ring.push mb 2;
        let third_pushed = Atomic.make false in
        let producer =
          Domain.spawn (fun () ->
              Serve.Pool.Ring.push mb 3;
              Atomic.set third_pushed true)
        in
        (* The producer must be blocked on the full mailbox.  A timing
           check, but generous: it only fails if backpressure is absent
           entirely. *)
        Unix.sleepf 0.05;
        Alcotest.(check bool) "push blocked while full" false
          (Atomic.get third_pushed);
        Alcotest.(check (option int)) "fifo" (Some 1) (Serve.Pool.Ring.pop mb);
        Domain.join producer;
        Alcotest.(check bool) "push completed after pop" true
          (Atomic.get third_pushed);
        Alcotest.(check (option int)) "nothing dropped" (Some 2)
          (Serve.Pool.Ring.pop mb);
        Alcotest.(check (option int)) "third delivered" (Some 3)
          (Serve.Pool.Ring.pop mb));
    Alcotest.test_case "divergence verdict drains late producers" `Quick
      (fun () ->
        (* Rank 1 diverges at position 0 but keeps pushing far past the
           window; the checker must discard the excess rather than leave
           the producer blocked. *)
        let t = Stream.create ~fanout:2 ~window:4 ~nranks:2 () in
        Stream.push t ~rank:0 (barrier "a");
        for i = 0 to 99 do
          Stream.push t ~rank:1 (allreduce (string_of_int i))
        done;
        Stream.close_rank t ~rank:0;
        Stream.close_rank t ~rank:1;
        let report, stats = Stream.result t in
        Alcotest.(check bool) "divergence" false (Overlay.is_match report);
        Alcotest.(check int) "all events accounted for" 101
          (stats.Stream.events + stats.Stream.drained));
  ]

let engine_tests =
  [
    Alcotest.test_case "attached engine run matches post-hoc oracle" `Quick
      (fun () ->
        let src =
          {|func main() { MPI_Barrier(); var x = 0; x = MPI_Allreduce(1, sum);
             MPI_Bcast(x, 0); MPI_Barrier(); }|}
        in
        let p = Minilang.Parser.parse_string ~file:"t" src in
        let config = { Interp.Sim.default_config with nranks = 4 } in
        (* Oracle: the same program with full trace retention. *)
        let oracle = Interp.Sim.run ~config p in
        let post = Overlay.check_engine ~fanout:2 oracle.Interp.Sim.engine in
        (* Online: retention off, events streamed through the hook. *)
        let t = Stream.create ~fanout:2 ~nranks:4 () in
        let result =
          Interp.Sim.run ~config ~on_engine:(Stream.attach_engine t) p
        in
        let report, stats = Stream.result t in
        Alcotest.(check string)
          "streaming = post-hoc"
          (Overlay.report_to_string post)
          (Overlay.report_to_string report);
        Alcotest.(check int) "retention off: engine kept no traces" 0
          (List.length (Mpisim.Engine.rank_trace result.Interp.Sim.engine 0));
        Alcotest.(check int) "all arrivals streamed" 16 stats.Stream.events);
    Alcotest.test_case "attached engine catches a divergence online" `Quick
      (fun () ->
        let src =
          {|func main() { if (rank() == 0) { MPI_Barrier(); } else { MPI_Allgather(1); } }|}
        in
        let p = Minilang.Parser.parse_string ~file:"t" src in
        let config = { Interp.Sim.default_config with nranks = 3 } in
        let t = Stream.create ~fanout:2 ~nranks:3 () in
        ignore (Interp.Sim.run ~config ~on_engine:(Stream.attach_engine t) p);
        let report, _ = Stream.result t in
        Alcotest.(check bool) "divergence found online" false
          (Overlay.is_match report));
    Alcotest.test_case "rank-count mismatch rejected" `Quick (fun () ->
        let t = Stream.create ~nranks:2 () in
        let engine = Mpisim.Engine.create ~nranks:3 in
        (match Stream.attach_engine t engine with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
        ignore (Stream.result t));
  ]

let qcheck_tests =
  let open QCheck in
  let gen_trace =
    Gen.list_size (Gen.int_bound 6)
      (Gen.oneofl
         [
           barrier "s";
           allreduce "s";
           ev ~root:(Some 0) Mpisim.Coll.Bcast "s";
           ev ~op:(Some Mpisim.Op.Max) Mpisim.Coll.Reduce ~root:(Some 1) "s";
         ])
  in
  let arb =
    make
      ~print:(fun (traces, fanout, shards) ->
        Printf.sprintf "%d traces, fanout %d, shards %d" (Array.length traces)
          fanout shards)
      Gen.(
        map3
          (fun traces fanout shards -> (Array.of_list traces, fanout, shards))
          (list_size (int_range 1 9) gen_trace)
          (int_range 2 8) (int_range 1 4))
  in
  [
    QCheck_alcotest.to_alcotest
      (Test.make
         ~name:"streaming report is byte-identical to post-hoc" ~count:150 arb
         (fun (traces, fanout, shards) ->
           let post = Overlay.check ~fanout traces in
           let stream, _ =
             Stream.check_traces ~fanout ~shards ~window:2 ~batch:3 traces
           in
           Overlay.report_to_string post = Overlay.report_to_string stream));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"stats events+drained cover the whole input"
         ~count:100 arb
         (fun (traces, fanout, shards) ->
           let total =
             Array.fold_left (fun acc t -> acc + List.length t) 0 traces
           in
           let _, st = Stream.check_traces ~fanout ~shards traces in
           st.Stream.events + st.Stream.drained = total));
  ]

let suite =
  [
    ("stream.identity", identity_tests);
    ("stream.determinism", determinism_tests);
    ("stream.backpressure", backpressure_tests);
    ("stream.engine", engine_tests);
    ("stream.qcheck", qcheck_tests);
  ]
